"""Differential property test: every strategy family, both backends.

One schedule, two machines: the cost-accounting :class:`SimBackend` and
the real-tensor :class:`TensorBackend` must report identical step
counts and slot peaks for any feasible ``(strategy, l, slots)`` — and
the tensor run's gradients must stay bit-identical to the store-all
``train_step`` reference, whatever schedule drove the recomputation.
"""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.autodiff import DenseLayer, ReLULayer, SequentialNet
from repro.checkpointing import ChainSpec
from repro.checkpointing.strategies import available_strategies, get_strategy
from repro.engine import SimBackend, TensorBackend, execute

FAMILIES = available_strategies()


def _dense_net(l, rng, dim=4, classes=3):
    layers = []
    for i in range(l - 1):
        if i % 2 == 1:
            layers.append(ReLULayer(name=f"r{i}"))
        else:
            layers.append(DenseLayer(dim, dim, rng, name=f"d{i}"))
    layers.append(DenseLayer(dim, classes, rng, name="head"))
    return SequentialNet(layers, name=f"net{l}")


@settings(max_examples=50, deadline=None)
@given(
    family=st.sampled_from(FAMILIES),
    l=st.integers(min_value=2, max_value=8),
    slots=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_backends_agree_and_gradients_exact(family, l, slots, seed):
    strat = get_strategy(family)
    assume(strat.feasible(l, slots))
    sch = strat.schedule(l, slots)

    sim_run = execute(sch, SimBackend(ChainSpec.homogeneous(l)))

    rng = np.random.default_rng(seed)
    net = _dense_net(l, rng)
    x = rng.standard_normal((5, 4))
    labels = rng.integers(0, 3, size=5)
    ref_loss, ref_grads, _ = net.train_step(x, labels)

    backend = TensorBackend(net, x, labels)
    ten_run = execute(sch, backend)

    assert ten_run.forward_steps == sim_run.forward_steps
    assert ten_run.replay_steps == sim_run.replay_steps == l
    assert ten_run.peak_slots == sim_run.peak_slots
    assert ten_run.executions == sim_run.executions
    assert ten_run.snapshots_taken == sim_run.snapshots_taken
    assert ten_run.restores == sim_run.restores

    assert backend.loss_value == ref_loss
    assert set(backend.grads) == set(ref_grads)
    for name in ref_grads:
        np.testing.assert_array_equal(backend.grads[name], ref_grads[name])
