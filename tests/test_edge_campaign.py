"""In-situ campaign simulation: harvest -> idle-time training -> target."""

import pytest

from repro.edge import (
    CampaignConfig,
    LearningCurve,
    ODROID_XU4,
    TrainingWorkload,
    run_campaign,
)
from repro.errors import PlanningError
from repro.units import MB


def workload(batch=8):
    return TrainingWorkload(
        model="student",
        chain_length=18,
        slot_act_bytes_per_sample=2 * MB,
        fixed_bytes=180 * MB,
        flops_per_sample=3.6e9,
        n_images=1,
        batch_size=batch,
    )


def config(**kw):
    base = dict(workload=workload(), target_accuracy=0.9, seed=0)
    base.update(kw)
    return CampaignConfig(**base)


class TestLearningCurve:
    def test_monotone_saturating(self):
        c = LearningCurve()
        accs = [c.accuracy(n) for n in (0, 100, 1000, 10_000, 100_000)]
        assert accs == sorted(accs)
        assert accs[0] == pytest.approx(c.floor)
        assert accs[-2] < c.ceiling  # strictly below until saturation
        assert accs[-1] <= c.ceiling

    def test_inverse(self):
        c = LearningCurve()
        n = c.images_for(0.9)
        assert c.accuracy(n) >= 0.9
        assert c.accuracy(max(0, n - 1)) < 0.9 or n == 0

    def test_target_out_of_range(self):
        with pytest.raises(PlanningError):
            LearningCurve(ceiling=0.9).images_for(0.95)

    def test_validation(self):
        with pytest.raises(PlanningError):
            LearningCurve(floor=0.9, ceiling=0.5)
        with pytest.raises(PlanningError):
            LearningCurve(scale=0)


class TestCampaign:
    def test_reaches_target(self):
        res = run_campaign(config(), ODROID_XU4)
        assert res.reached_target
        assert res.target_day is not None
        assert res.final_accuracy >= 0.9
        assert res.storage_ok

    def test_more_traffic_faster(self):
        slow = run_campaign(config(crossings_per_day=20.0), ODROID_XU4)
        fast = run_campaign(config(crossings_per_day=200.0), ODROID_XU4)
        assert fast.target_day <= slow.target_day

    def test_higher_target_takes_longer(self):
        low = run_campaign(config(target_accuracy=0.7), ODROID_XU4)
        high = run_campaign(config(target_accuracy=0.95), ODROID_XU4)
        assert high.target_day >= low.target_day

    def test_unreachable_target_times_out(self):
        res = run_campaign(
            config(target_accuracy=0.969, crossings_per_day=0.1, max_days=5),
            ODROID_XU4,
        )
        assert not res.reached_target
        assert res.target_day is None
        assert len(res.days) == 5

    def test_wall_time_exceeds_compute(self):
        res = run_campaign(config(), ODROID_XU4)
        for day in res.days:
            assert day.train_wall_s >= day.train_compute_s

    def test_harvest_monotone(self):
        res = run_campaign(config(), ODROID_XU4)
        totals = [d.harvested_total for d in res.days]
        assert totals == sorted(totals)

    def test_deterministic_under_seed(self):
        a = run_campaign(config(seed=7), ODROID_XU4)
        b = run_campaign(config(seed=7), ODROID_XU4)
        assert a.target_day == b.target_day
        assert a.days[-1].harvested_total == b.days[-1].harvested_total
