"""Crash recovery: bit-identical resume and the simulated fault timeline."""

import numpy as np
import pytest

from repro.autodiff import (
    Adam,
    DenseLayer,
    DropoutLayer,
    FitCursor,
    Momentum,
    ReLULayer,
    SequentialNet,
    Trainer,
    TrainerConfig,
    gaussian_blobs,
)
from repro.edge.simulator import DutyCycleSimulator
from repro.errors import PlanningError
from repro.resilience import (
    FaultInjector,
    FixedIntervalPolicy,
    PoissonFaults,
    TransientDiskFaults,
    fit_with_recovery,
    read_snapshot,
    run_duty_cycle_with_faults,
)


def make_net(seed, dropout=False):
    rng = np.random.default_rng(seed)
    layers = [DenseLayer(6, 12, rng, name="fc0")]
    if dropout:
        layers.append(DropoutLayer(0.2, seed=4, name="drop"))
    layers += [ReLULayer(name="r0"), DenseLayer(12, 3, rng, name="head")]
    return SequentialNet(layers)


def make_trainer(seed=7, opt="momentum", epochs=4, dropout=False):
    net = make_net(seed, dropout=dropout)
    optimizer = (
        Adam(net.layers, lr=0.01) if opt == "adam" else Momentum(net.layers, lr=0.02)
    )
    return Trainer(net, optimizer, TrainerConfig(epochs=epochs, shuffle_seed=seed))


@pytest.fixture
def data():
    return gaussian_blobs(32, 3, 6, np.random.default_rng(2), separation=6.0)


def losses(trainer):
    return [r.mean_loss for r in trainer.history]


class TestBitIdenticalRecovery:
    @pytest.mark.parametrize("opt", ["momentum", "adam"])
    def test_crash_mid_epoch_resumes_identically(self, data, opt):
        """The acceptance property: loss trajectory AND final weights of a
        crashed+recovered run equal the uninterrupted run exactly."""
        ref = make_trainer(opt=opt)
        ref.fit(data)

        t = make_trainer(opt=opt)
        report = fit_with_recovery(
            t,
            data,
            policy=FixedIntervalPolicy(3),
            injector=FaultInjector([5, 11]),  # both strike mid-epoch (6 steps/epoch)
        )
        assert report.faults == 2 and report.restores == 2
        assert losses(t) == losses(ref)
        for la, lb in zip(ref.net.layers, t.net.layers):
            for p in la.params:
                assert np.array_equal(la.params[p], lb.params[p])

    def test_crash_with_dropout_layer(self, data):
        """Dropout masks derive from (seed, step), so replayed steps draw
        the same masks and recovery stays exact."""
        ref = make_trainer(dropout=True)
        ref.fit(data)
        t = make_trainer(dropout=True)
        fit_with_recovery(
            t, data, policy=FixedIntervalPolicy(2), injector=FaultInjector([7])
        )
        assert losses(t) == losses(ref)

    def test_crash_before_first_policy_write(self, data):
        """A fault at step 1 rolls back to the step-0 snapshot."""
        ref = make_trainer()
        ref.fit(data)
        t = make_trainer()
        report = fit_with_recovery(
            t, data, policy=FixedIntervalPolicy(100), injector=FaultInjector([1])
        )
        assert report.lost_steps == 1
        assert losses(t) == losses(ref)

    def test_lost_steps_accounting(self, data):
        t = make_trainer()
        report = fit_with_recovery(
            t,
            data,
            policy=FixedIntervalPolicy(4),
            injector=FaultInjector([10]),  # last snapshot at step 8
        )
        assert report.lost_steps == 2
        assert report.final_step == 24  # 4 epochs x 6 steps
        assert report.total_steps_executed == 26

    def test_durable_file_tracks_latest_snapshot(self, tmp_path, data):
        path = tmp_path / "snap.json"
        t = make_trainer()
        fit_with_recovery(
            t,
            data,
            policy=FixedIntervalPolicy(3),
            injector=FaultInjector([5]),
            snapshot_path=path,
        )
        snap = read_snapshot(path)
        assert snap.cursor.step == 24  # last policy-due write

    def test_transient_disk_failure_keeps_previous_snapshot(self, data):
        """A failed write is survivable: the run falls back further but
        still recovers exactly."""
        ref = make_trainer()
        ref.fit(data)
        t = make_trainer()

        class AlwaysFails(TransientDiskFaults):
            def write_fails(self, rng):
                return True

        report = fit_with_recovery(
            t,
            data,
            policy=FixedIntervalPolicy(3),
            injector=FaultInjector([5]),
            disk_faults=AlwaysFails(),
            disk_rng=np.random.default_rng(0),
        )
        assert report.snapshots == 1  # only the step-0 snapshot survived
        assert report.snapshot_write_failures > 0
        assert report.lost_steps == 5  # rolled all the way back
        assert losses(t) == losses(ref)

    def test_disk_faults_require_rng(self, data):
        with pytest.raises(PlanningError, match="disk_rng"):
            fit_with_recovery(
                make_trainer(),
                data,
                policy=FixedIntervalPolicy(3),
                disk_faults=TransientDiskFaults(0.5),
            )

    def test_fault_storm_gives_up(self, data):
        """Crashing every step with snapshots too sparse to make progress
        must terminate with a typed error, not loop forever."""
        t = make_trainer(epochs=1)
        with pytest.raises(PlanningError, match="fault rate"):
            fit_with_recovery(
                t,
                data,
                policy=FixedIntervalPolicy(1000),
                injector=FaultInjector([1, 2, 3, 4, 5]),
                max_faults=3,
            )

    def test_no_injector_is_plain_fit(self, data):
        ref = make_trainer()
        ref.fit(data)
        t = make_trainer()
        report = fit_with_recovery(t, data, policy=FixedIntervalPolicy(4))
        assert report.faults == 0
        assert losses(t) == losses(ref)


class TestCompressedScheduleRecovery:
    """The compressed slot band composes with crash recovery: a trainer
    whose inner loop replays a ``revolve_zip`` schedule (every snapshot
    slot carries the compressed-band flag) recovers bit-identically."""

    def make_zip_trainer(self, seed=7, epochs=4):
        rng = np.random.default_rng(seed)
        net = SequentialNet(
            [
                DenseLayer(6, 12, rng, name="fc0"),
                ReLULayer(name="r0"),
                DenseLayer(12, 12, rng, name="fc1"),
                ReLULayer(name="r1"),
                DenseLayer(12, 3, rng, name="head"),
            ]
        )
        optimizer = Momentum(net.layers, lr=0.02)
        return Trainer(
            net,
            optimizer,
            TrainerConfig(
                epochs=epochs, shuffle_seed=seed, strategy="revolve_zip", slots=2
            ),
        )

    def test_zip_schedule_is_compressed_and_recomputes(self, data):
        from repro.checkpointing import is_compressed_slot
        from repro.checkpointing.actions import ActionKind

        t = self.make_zip_trainer()
        t.fit(data)
        assert t.schedule_strategy == "revolve_zip"
        snaps = [
            a for a in t._schedule.actions if a.kind is ActionKind.SNAPSHOT
        ]
        assert snaps and all(is_compressed_slot(a.arg) for a in snaps)

    def test_crash_mid_epoch_resumes_identically(self, data):
        """The acceptance property, through the compressed band: the
        crashed+recovered zip run equals the uninterrupted zip run (and
        the zip schedule itself never changes the math)."""
        ref = self.make_zip_trainer()
        ref.fit(data)

        t = self.make_zip_trainer()
        report = fit_with_recovery(
            t,
            data,
            policy=FixedIntervalPolicy(3),
            injector=FaultInjector([5, 11]),
        )
        assert report.faults == 2 and report.restores == 2
        assert losses(t) == losses(ref)
        for la, lb in zip(ref.net.layers, t.net.layers):
            for p in la.params:
                assert np.array_equal(la.params[p], lb.params[p])

    def test_snapshot_roundtrip_mid_run(self, tmp_path, data):
        """A TrainingSnapshot written mid-run under the zip schedule
        reads back and carries the exact resume cursor."""
        path = tmp_path / "snap.json"
        t = self.make_zip_trainer()
        fit_with_recovery(
            t,
            data,
            policy=FixedIntervalPolicy(3),
            injector=FaultInjector([5]),
            snapshot_path=path,
        )
        snap = read_snapshot(path)
        assert snap.cursor.step == 24  # last policy-due write


class TestTrainerResume:
    def test_on_step_sees_every_global_step(self, data):
        t = make_trainer()
        captured = []
        t.fit(data, on_step=lambda c, loss: captured.append(c))
        assert [c.step for c in captured] == list(range(1, 25))
        assert captured[-1].epoch == 3 and captured[-1].batch == 6

    def test_mid_epoch_cursor_resume_matches_unbroken_run(self, data):
        """Resuming from a raw cursor (no snapshot machinery) at a batch
        boundary inside an epoch reproduces the unbroken history, because
        the cursor carries the partial-epoch loss accumulators."""
        ref = make_trainer()
        ref.fit(data)

        t = make_trainer()
        stop_at = 9  # mid-epoch 1
        grabbed = {}

        class Stop(Exception):
            pass

        def hook(c, loss):
            if c.step == stop_at:
                grabbed["cursor"] = c
                raise Stop

        with pytest.raises(Stop):
            t.fit(data, on_step=hook)
        t.fit(data, cursor=grabbed["cursor"])
        assert losses(t) == losses(ref)
        for la, lb in zip(ref.net.layers, t.net.layers):
            for p in la.params:
                assert np.array_equal(la.params[p], lb.params[p])

    def test_per_epoch_shuffle_is_pure_function_of_epoch(self, data):
        """Epoch k's batch order depends only on (shuffle_seed, k): two
        runs that diverge in epoch *count* still agree per epoch."""
        a = make_trainer(epochs=2)
        b = make_trainer(epochs=4)
        a.fit(data)
        b.fit(data)
        assert losses(a) == losses(b)[:2]

    def test_cursor_validation(self):
        with pytest.raises(ValueError):
            FitCursor(epoch=-1)
        with pytest.raises(ValueError):
            FitCursor(step=-3)


class TestSimulatedTimeline:
    def test_fault_free_has_only_snapshot_overhead(self):
        res = run_duty_cycle_with_faults(
            1000.0,
            PoissonFaults(mtbf_seconds=1e12),
            np.random.default_rng(0),
            interval_seconds=100.0,
            snapshot_seconds=5.0,
        )
        assert res.crashes == 0
        # 10 segments, final one skips the write
        assert res.snapshot_overhead_seconds == pytest.approx(45.0)
        assert res.wall_seconds == pytest.approx(1045.0)
        assert res.overhead_factor == pytest.approx(1.045)

    def test_crashes_lose_and_recompute_work(self):
        res = run_duty_cycle_with_faults(
            20_000.0,
            PoissonFaults(mtbf_seconds=2000.0),
            np.random.default_rng(1),
            interval_seconds=500.0,
            snapshot_seconds=5.0,
            restart_seconds=30.0,
        )
        assert res.crashes > 0
        assert res.lost_compute_seconds > 0
        assert res.restart_overhead_seconds == res.crashes * 30.0
        assert res.wall_seconds > 20_000.0

    def test_duty_cycle_stretches_wall_time(self):
        sim = DutyCycleSimulator(np.random.default_rng(4))
        with_sim = run_duty_cycle_with_faults(
            5000.0,
            PoissonFaults(mtbf_seconds=1e12),
            np.random.default_rng(2),
            interval_seconds=500.0,
            snapshot_seconds=2.0,
            sim=sim,
        )
        assert with_sim.preemptions > 0
        assert with_sim.wall_seconds > 5000.0 + 2.0 * 9

    def test_deterministic_under_seed(self):
        run = lambda: run_duty_cycle_with_faults(  # noqa: E731
            10_000.0,
            PoissonFaults(mtbf_seconds=1500.0),
            np.random.default_rng(9),
            interval_seconds=300.0,
            snapshot_seconds=4.0,
        )
        assert run() == run()

    def test_validation(self):
        with pytest.raises(ValueError):
            run_duty_cycle_with_faults(
                -1.0,
                PoissonFaults(),
                np.random.default_rng(0),
                interval_seconds=10.0,
                snapshot_seconds=1.0,
            )
        with pytest.raises(ValueError):
            run_duty_cycle_with_faults(
                10.0,
                PoissonFaults(),
                np.random.default_rng(0),
                interval_seconds=0.0,
                snapshot_seconds=1.0,
            )
