"""Memory-over-time traces: shapes and consistency with the simulator."""

import pytest

from repro.checkpointing import (
    ChainSpec,
    memory_timeline,
    revolve_schedule,
    simulate,
    store_all_schedule,
    timeline_ascii,
    uniform_schedule,
)
from repro.errors import ExecutionError


class TestTimeline:
    def test_peak_matches_simulator(self):
        spec = ChainSpec.homogeneous(20, act_bytes=3)
        for sch in (revolve_schedule(20, 4), uniform_schedule(20, 4), store_all_schedule(20)):
            trace = memory_timeline(sch, spec)
            stats = simulate(sch, spec)
            assert max(p.live_bytes for p in trace) == stats.peak_bytes
            assert max(p.live_slot_bytes for p in trace) == stats.peak_slot_bytes

    def test_backwards_progress_monotone(self):
        trace = memory_timeline(revolve_schedule(15, 3))
        done = [p.backwards_done for p in trace]
        assert done == sorted(done)
        assert done[-1] == 15

    def test_store_all_triangle(self):
        """Store-all climbs to the peak, then strictly never grows."""
        l = 12
        trace = memory_timeline(store_all_schedule(l))
        peak_at = max(range(len(trace)), key=lambda i: trace[i].live_bytes)
        after = [p.live_bytes for p in trace[peak_at:]]
        assert all(a <= trace[peak_at].live_bytes for a in after)
        assert trace[peak_at].live_bytes == l + 1  # l slots + cursor

    def test_revolve_sawtooth_stays_low(self):
        """Revolve's trace never approaches the store-all peak."""
        l = 30
        lean = memory_timeline(revolve_schedule(l, 3))
        assert max(p.live_bytes for p in lean) <= 3 + 1
        fat = memory_timeline(store_all_schedule(l))
        assert max(p.live_bytes for p in fat) == l + 1

    def test_one_point_per_action(self):
        sch = revolve_schedule(10, 2)
        assert len(memory_timeline(sch)) == len(sch.actions)

    def test_invalid_schedule_rejected(self):
        from repro.checkpointing import Schedule, snapshot

        bad = Schedule(strategy="bad", length=2, slots=1, actions=(snapshot(0),))
        with pytest.raises(ExecutionError):
            memory_timeline(bad)


class TestAsciiTimeline:
    def test_renders_all_series(self):
        text = timeline_ascii(
            {
                "revolve": revolve_schedule(20, 3),
                "store_all": store_all_schedule(20),
            }
        )
        assert "revolve" in text
        assert "store_all" in text
        assert "execution progress" in text

    def test_empty_rejected(self):
        with pytest.raises(ExecutionError):
            timeline_ascii({})
