"""Campaign telemetry: runlog capture, aggregation, runner + CLI wiring."""

import json
import time

import pytest

from repro import lab, obs
from repro.cli import main
from repro.errors import LabError
from repro.obs import aggregate
from repro.obs.runlog import (
    RunlogTracer,
    UnitCapture,
    read_unit_runlog,
    write_unit_runlog,
)

import repro.experiments  # noqa: F401


def _ascii(doc):
    return f"{sorted(doc.items())}\n"


def _tele_spec(name, deps=(), sleep_s=0.0):
    """A deterministic spec: one explicit span, one event, one counter.

    Custom specs keep the serial-vs-parallel telemetry comparison exact:
    real specs hit the process-memoized schedule/program caches, whose
    span and counter counts depend on which process computed what first.
    """

    def compute(params, inputs):
        tracer = obs.get_tracer()
        with tracer.span("work", category="test", spec=name):
            if sleep_s:
                time.sleep(sleep_s)
            obs.get_metrics().counter(f"test.{name}.calls").inc()
            tracer.event("tick", category="test")
        return {"n": name, "inputs": len(inputs)}

    return lab.ExperimentSpec(
        name=name,
        title=name,
        compute=compute,
        renderers={"ascii": _ascii},
        deps=deps,
        default_units=(lab.UnitDef({}, ((f"{name}.txt", "ascii"),)),),
        code_fingerprint=name.ljust(64, "0")[:64],
    )


@pytest.fixture
def tele_specs():
    """Three registered custom specs: a <- b, plus independent c.

    a and b sleep so the a->b chain's measured wall time dominates c's
    by orders of magnitude: the critical-path assertion must not hinge
    on scheduler noise between near-zero-cost units.
    """
    names = ("t_cam_a", "t_cam_b", "t_cam_c")
    lab.register(_tele_spec("t_cam_a", sleep_s=0.05))
    lab.register(_tele_spec("t_cam_b", deps=(("t_cam_a", {}),), sleep_s=0.05))
    lab.register(_tele_spec("t_cam_c"))
    try:
        yield names
    finally:
        for name in names:
            lab.unregister(name)


class TestRunlogTracer:
    def test_hot_paths_disabled_but_spans_buffered(self):
        t = RunlogTracer()
        assert t.enabled is False  # per-action instrumentation stays off
        with t.span("phase", category="lab", x=1):
            t.event("tick", category="lab")
        assert [s.name for s in t.spans()] == ["phase"]
        assert [e.name for e in t.events()] == ["tick"]


class TestUnitCapture:
    def test_record_profile_and_roundtrip(self, tmp_path):
        with UnitCapture(key="k1", spec="demo", params={"x": 1},
                         parents=("p1",)) as cap:
            tracer = obs.get_tracer()
            assert isinstance(tracer, RunlogTracer)
            with tracer.span("work", category="test"):
                time.sleep(0.01)
            obs.get_metrics().counter("test.capture.calls").inc(2)
        profile = cap.profile
        assert profile["wall_s"] >= 0.01
        assert profile["max_rss_kb"] > 0
        assert {"user_cpu_s", "sys_cpu_s", "pid"} <= set(profile)
        header = cap.record["unit"]
        assert header["key"] == "k1" and header["parents"] == ["p1"]
        assert header["error"] is None
        names = [s["name"] for s in cap.record["spans"]]
        assert "work" in names and "unit" in names
        delta = cap.record["metric_deltas"]["test.capture.calls"]
        assert delta == {"kind": "counter", "delta": 2}

        path = write_unit_runlog(tmp_path, cap.record)
        assert path.name == "k1.jsonl"
        back = read_unit_runlog(path)
        assert back["unit"]["spec"] == "demo"
        assert [s["name"] for s in back["spans"]] == names
        assert back["metric_deltas"]["test.capture.calls"]["delta"] == 2

    def test_restores_previous_tracer_on_error(self):
        before = obs.get_tracer()
        with pytest.raises(RuntimeError):
            with UnitCapture(key="k2", spec="demo") as cap:
                raise RuntimeError("boom")
        assert obs.get_tracer() is before
        assert cap.record["unit"]["error"] == "RuntimeError"

    def test_read_rejects_headerless_file(self, tmp_path):
        p = tmp_path / "x.jsonl"
        p.write_text('{"type": "span", "name": "s"}\n')
        with pytest.raises(ValueError, match="unit header"):
            read_unit_runlog(p)


class TestHistogramPercentiles:
    def test_percentiles_exact_under_cap(self):
        h = obs.Metrics().histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(95) == pytest.approx(95.05)
        assert h.percentile(0) == 1.0 and h.percentile(100) == 100.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_snapshot_and_reset_carry_percentiles(self):
        m = obs.Metrics()
        for v in (1.0, 2.0, 3.0):
            m.histogram("h").observe(v)
        snap = m.snapshot()["h"]
        assert snap["p50"] == 2.0 and snap["p95"] == pytest.approx(2.9)
        m.reset()
        assert m.snapshot()["h"]["p50"] == 0.0

    def test_sample_cap_bounds_memory(self):
        h = obs.Metrics().histogram("h")
        for v in range(2 * h.SAMPLE_CAP):
            h.observe(float(v))
        assert len(h._samples) == h.SAMPLE_CAP
        assert h.count == 2 * h.SAMPLE_CAP


class TestSummaryTables:
    def test_counters_table_includes_cache_families(self):
        m = obs.Metrics()
        m.counter("test.random").inc()
        text = obs.summary(obs.Tracer(), m)
        for family in ("ckpt.program_cache.hits", "lab.cache.misses",
                       "ckpt.schedule_cache.hits"):
            assert family in text

    def test_histogram_table_has_percentile_columns(self):
        m = obs.Metrics()
        for v in (1.0, 9.0):
            m.histogram("lab.compute_seconds").observe(v)
        text = obs.summary(obs.Tracer(), m)
        assert "p50" in text and "p95" in text
        assert "lab.compute_seconds" in text


class TestWallTimeFix:
    def test_pooled_wall_time_excludes_queue_wait(self):
        # Four 0.25 s units on two workers: all four are submitted at
        # once, so the old submit->result measurement would charge the
        # second pair ~0.5 s.  Worker-measured wall stays ~0.25 s.
        names = [f"t_wall_{i}" for i in range(4)]
        for name in names:
            lab.register(_tele_spec(name, sleep_s=0.25))
        try:
            report = lab.run_units(
                [lab.Unit(n) for n in names], None, jobs=2
            )
        finally:
            for name in names:
                lab.unregister(name)
        walls = [o.wall_time_s for o in report.outcomes]
        assert all(w >= 0.24 for w in walls)
        assert max(walls) < 0.4, f"queue wait leaked into wall times: {walls}"


class TestParentSpanFix:
    def test_pool_path_records_collect_not_unit(self, tele_specs, tmp_path):
        units = [lab.Unit(n) for n in tele_specs]
        with obs.tracing() as tracer:
            lab.run_units(units, lab.ArtifactStore(tmp_path), jobs=2)
        lab_spans = [s for s in tracer.spans() if s.category == "lab"]
        assert not [s for s in lab_spans if s.name == "unit"]
        assert [s for s in lab_spans if s.name == "collect"]

    def test_serial_path_keeps_unit_spans(self, tele_specs, tmp_path):
        units = [lab.Unit(n) for n in tele_specs]
        with obs.tracing() as tracer:
            lab.run_units(units, lab.ArtifactStore(tmp_path), jobs=1)
        unit_spans = [
            s for s in tracer.spans()
            if s.category == "lab" and s.name == "unit"
        ]
        assert len(unit_spans) == len(units)


def _run_campaign(tele_specs, root, jobs):
    units = [
        lab.Unit(n, outputs=((f"{n}.txt", "ascii"),)) for n in tele_specs
    ]
    return lab.run_units(
        units, lab.ArtifactStore(root), jobs=jobs, telemetry=True
    )


class TestTelemetryRuns:
    def test_telemetry_requires_store(self, tele_specs):
        with pytest.raises(LabError, match="telemetry"):
            lab.run_units([lab.Unit(tele_specs[0])], None, telemetry=True)

    def test_serial_and_parallel_telemetry_equivalent(self, tele_specs, tmp_path):
        r1 = _run_campaign(tele_specs, tmp_path / "serial", jobs=1)
        r2 = _run_campaign(tele_specs, tmp_path / "para", jobs=2)
        c1 = aggregate.load_campaign(r1.telemetry_dir)
        c2 = aggregate.load_campaign(r2.telemetry_dir)
        assert len(c1.units) == len(c2.units) == 3

        def shape(campaign):
            spans = {}
            counters = {}
            for u in campaign.units:
                spans[u.spec] = sorted(s["name"] for s in u.spans)
                for name, d in u.metric_deltas.items():
                    if name.startswith("test."):
                        counters[name] = counters.get(name, 0) + d["delta"]
            return spans, counters

        spans1, counters1 = shape(c1)
        spans2, counters2 = shape(c2)
        assert spans1 == spans2  # same span names per spec
        assert counters1 == counters2 == {
            f"test.{n}.calls": 1 for n in tele_specs
        }
        # lab-level counter deltas in campaign.json agree too
        for name in ("lab.cache.hits", "lab.cache.misses", "lab.cache.corrupt"):
            assert c1.meta["counters"][name] == c2.meta["counters"][name]

    def test_merged_trace_one_lane_per_worker(self, tele_specs, tmp_path):
        report = _run_campaign(tele_specs, tmp_path, jobs=2)
        campaign = aggregate.load_campaign(tmp_path)
        doc = json.loads(json.dumps(aggregate.merge_chrome_trace(campaign)))
        worker_pids = {u.pid for u in campaign.units}
        span_pids = {
            e["pid"] for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "unit"
        }
        assert span_pids == worker_pids
        lane_names = {
            e["args"]["name"]
            for e in doc["traceEvents"] if e["ph"] == "M"
        }
        assert lane_names == {f"worker {p}" for p in worker_pids} | {"campaign"}
        unit_spans = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "unit"
        ]
        assert len(unit_spans) == len(report.outcomes)
        for span in unit_spans:
            assert {"wall_s", "user_cpu_s", "sys_cpu_s", "max_rss_kb"} <= set(
                span["args"]
            )

    def test_campaign_summary_and_report(self, tele_specs, tmp_path):
        _run_campaign(tele_specs, tmp_path, jobs=2)
        campaign = aggregate.load_campaign(tmp_path)
        summ = aggregate.campaign_summary(campaign)
        assert summ["campaign"]["computed"] == 3
        assert summ["campaign"]["jobs"] == 2
        assert 0 < summ["campaign"]["occupancy"] <= 1
        # b depends on a, so the critical path chains both specs
        chain = [step["spec"] for step in summ["campaign"]["critical_path"]]
        assert chain[-1] == "t_cam_b" and "t_cam_a" in chain
        assert set(summ["specs"]) == set(tele_specs)
        text = aggregate.render_report(summ)
        assert "Campaign report" in text and "critical path" in text
        assert "lab cache" in text and "t_cam_b" in text

    def test_manifest_telemetry_refs(self, tele_specs, tmp_path):
        _run_campaign(tele_specs, tmp_path, jobs=1)
        store = lab.ArtifactStore(tmp_path)
        seen = 0
        for _stem, doc in store.manifests():
            ref = doc["telemetry"]
            assert (tmp_path / ref["runlog"]).is_file()
            assert ref["profile"]["wall_s"] > 0
            seen += 1
        assert seen == 3

    def test_disabled_run_writes_nothing(self, tele_specs, tmp_path):
        units = [
            lab.Unit(n, outputs=((f"{n}.txt", "ascii"),)) for n in tele_specs
        ]
        report = lab.run_units(units, lab.ArtifactStore(tmp_path))
        assert report.telemetry_dir is None
        assert not (tmp_path / "telemetry").exists()
        docs = list(lab.ArtifactStore(tmp_path).manifests())
        assert len(docs) == 3
        assert all("telemetry" not in doc for _s, doc in docs)


class TestCli:
    def _run(self, capsys, *argv):
        code = main(list(argv))
        out = capsys.readouterr().out
        assert code == 0
        return out

    def test_all_telemetry_then_report(self, capsys, tmp_path, tele_specs):
        outdir = str(tmp_path / "art")
        out = self._run(
            capsys, "run", "t_cam_b", "--outdir", outdir, "--telemetry"
        )
        assert f"telemetry: {outdir}" in out

        report = self._run(capsys, "obs", "report", outdir)
        assert "Campaign report" in report and "t_cam_b" in report

        as_json = self._run(capsys, "obs", "report", outdir, "--json")
        doc = json.loads(as_json)
        assert doc["campaign"]["computed"] == 2  # t_cam_b plus its dep

        trace_file = tmp_path / "merged.json"
        out = self._run(
            capsys, "obs", "report", outdir, "--chrome-trace", str(trace_file)
        )
        assert "merged trace written" in out
        merged = json.loads(trace_file.read_text())
        assert any(
            e["name"] == "unit" for e in merged["traceEvents"] if e["ph"] == "X"
        )

    def test_run_telemetry_without_outdir_exits(self, tele_specs):
        with pytest.raises(SystemExit):
            main(["run", "t_cam_a", "--telemetry"])

    def test_report_on_plain_dir_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["obs", "report", str(tmp_path)])
