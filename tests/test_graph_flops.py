"""FLOP reports and coarse step-time estimation."""

import pytest

from repro.graph import FlopReport, estimate_step_seconds, flop_report
from repro.zoo import build_resnet, simple_mlp


class TestFlopReport:
    def test_training_step_decomposition(self):
        rep = FlopReport(forward=100, backward_ratio=2.0)
        assert rep.backward == 200
        assert rep.training_step == 300

    def test_report_from_graph(self):
        g = simple_mlp(in_features=8, hidden=16, depth=2)
        rep = flop_report(g)
        assert rep.forward == g.total_flops_per_sample()

    def test_custom_backward_ratio(self):
        g = simple_mlp()
        rep = flop_report(g, backward_ratio=1.0)
        assert rep.training_step == 2 * rep.forward

    def test_resnet_training_flops_scale(self):
        r18 = flop_report(build_resnet(18, image_size=64))
        r50 = flop_report(build_resnet(50, image_size=64))
        assert r50.training_step > r18.training_step


class TestStepSeconds:
    def test_linear_in_batch(self):
        t1 = estimate_step_seconds(1e9, 1, 10e9)
        t4 = estimate_step_seconds(1e9, 4, 10e9)
        assert t4 == pytest.approx(4 * t1)

    def test_efficiency_divides(self):
        full = estimate_step_seconds(1e9, 1, 10e9, efficiency=1.0)
        half = estimate_step_seconds(1e9, 1, 10e9, efficiency=0.5)
        assert half == pytest.approx(2 * full)

    def test_known_value(self):
        # 1 GFLOP at 1 GFLOP/s -> 1 second.
        assert estimate_step_seconds(1e9, 1, 1e9) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_step_seconds(1e9, 0, 1e9)
        with pytest.raises(ValueError):
            estimate_step_seconds(1e9, 1, 1e9, efficiency=0.0)
        with pytest.raises(ValueError):
            estimate_step_seconds(1e9, 1, 0.0)
