"""MobileNetV2: torchvision-exact counts and the edge-memory story."""

import pytest

from repro.errors import ShapeError
from repro.memory import account
from repro.zoo import build_resnet, mobilenet_v2


@pytest.fixture(scope="module")
def mnv2():
    return mobilenet_v2()


class TestArchitecture:
    def test_param_count_matches_torchvision(self, mnv2):
        assert mnv2.trainable_numel == 3_504_872

    def test_output_logits(self, mnv2):
        specs = mnv2.infer()
        assert specs["fc"].shape == (1000,)

    def test_final_feature_map(self, mnv2):
        specs = mnv2.infer()
        assert specs["head.relu"].shape == (1280, 7, 7)

    def test_stage_strides(self, mnv2):
        specs = mnv2.infer()
        # stem /2, then strides at blocks 1, 3, 6, 13 -> 7x7 at the end.
        assert specs["stem.relu"].shape[1:] == (112, 112)
        assert specs["block1.dw.relu"].shape[1:] == (56, 56)

    def test_depthwise_convs_are_grouped(self, mnv2):
        dw = mnv2.node("block2.dw.conv").layer
        assert dw.groups == dw.in_channels == dw.out_channels

    def test_known_gmacs(self, mnv2):
        """~0.30 GMACs at 224 (the published figure)."""
        assert mnv2.total_flops_per_sample() / 2 == pytest.approx(0.30e9, rel=0.05)

    def test_num_classes_head_only(self):
        a = mobilenet_v2(num_classes=1000)
        b = mobilenet_v2(num_classes=10)
        assert a.trainable_numel - b.trainable_numel == 1280 * 990 + 990

    def test_small_image_rejected(self):
        with pytest.raises(ShapeError):
            mobilenet_v2(image_size=16)


class TestEdgeMemoryStory:
    def test_fewer_params_than_resnet18(self, mnv2):
        assert mnv2.trainable_numel < build_resnet(18).trainable_numel / 3

    def test_but_more_activation_bytes(self, mnv2):
        """The inverted-bottleneck expansions make MobileNetV2's
        *activation* footprint larger than ResNet-18's — parameter
        efficiency does not remove the checkpointing problem."""
        r18 = build_resnet(18)
        assert mnv2.activation_bytes_per_sample() > 2 * r18.activation_bytes_per_sample()

    def test_training_account_dominated_by_activations(self, mnv2):
        acct = account(mnv2)
        assert acct.act_bytes_per_sample > acct.fixed_bytes
