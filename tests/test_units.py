"""Unit conversions and formatting."""

import pytest

from repro.units import (
    DTYPE_BYTES,
    GB,
    KB,
    MB,
    from_gb,
    from_mb,
    humanize_bytes,
    to_gb,
    to_mb,
)


def test_binary_constants():
    assert KB == 1024
    assert MB == 1024**2
    assert GB == 1024**3


def test_round_trips():
    assert to_mb(from_mb(123.5)) == pytest.approx(123.5)
    assert to_gb(from_gb(2.0)) == pytest.approx(2.0)


def test_paper_convention_table3_is_table1_over_1024():
    # Table III's GB values equal Table I's MB / 1024 under this convention.
    assert to_gb(from_mb(615.05)) == pytest.approx(615.05 / 1024)


def test_humanize_selects_unit():
    assert humanize_bytes(512) == "512 B"
    assert humanize_bytes(2 * KB) == "2.00 KB"
    assert humanize_bytes(3 * MB) == "3.00 MB"
    assert humanize_bytes(2 * GB) == "2.00 GB"


def test_humanize_negative():
    assert humanize_bytes(-3 * MB) == "-3.00 MB"


def test_humanize_precision():
    assert humanize_bytes(1536 * KB, precision=1) == "1.5 MB"


def test_dtype_bytes_cover_floats():
    assert DTYPE_BYTES["float32"] == 4
    assert DTYPE_BYTES["float16"] == 2
    assert DTYPE_BYTES["float64"] == 8
