"""Every shipped example must run end to end.

Examples are the documentation users actually execute; this module
imports each one and runs its ``main()`` with output captured (and
CSV-writing examples pointed at a temp directory).
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)  # type: ignore[union-attr]
    return mod


def run_main(name: str, capsys, argv: list[str] | None = None) -> str:
    mod = load(name)
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        mod.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_main("quickstart", capsys)
    assert "Plan:" in out
    assert "measured rho" in out


def test_checkpointed_training(capsys):
    out = run_main("checkpointed_training", capsys)
    assert "revolve_c3" in out
    # identical losses across strategies
    losses = {line.split("final loss")[1].split()[0] for line in out.splitlines() if "final loss" in line}
    assert len(losses) == 1


def test_viewpoint_adaptation(capsys):
    out = run_main("viewpoint_adaptation", capsys)
    assert "accuracy recovered" in out


def test_two_tier_checkpointing(capsys):
    out = run_main("two_tier_checkpointing", capsys)
    assert "Verified schedule" in out
    assert "DP optimum" in out


def test_adaptation_campaign(capsys):
    out = run_main("adaptation_campaign", capsys)
    assert "days to 0.90" in out


def test_tiny_resnet_edge(capsys):
    out = run_main("tiny_resnet_edge", capsys)
    assert "final accuracy" in out
    assert "Live checkpoint memory" in out


def test_deploy_schedule(capsys):
    out = run_main("deploy_schedule", capsys)
    assert "gradients identical to store-all: True" in out


def test_reproduce_figure1(capsys, tmp_path):
    out = run_main("reproduce_figure1", capsys, argv=["--outdir", str(tmp_path)])
    assert "Figure 1a" in out
    assert (tmp_path / "figure1_b.csv").exists()


def test_trace_training(capsys, tmp_path):
    import json

    out = run_main("trace_training", capsys, argv=["--outdir", str(tmp_path)])
    assert "final accuracy" in out
    assert "category" in out  # summary table printed
    doc = json.loads((tmp_path / "trace.json").read_text())
    cats = {e["cat"] for e in doc["traceEvents"]}
    assert {"epoch", "batch", "action", "cache"} <= cats
    lines = (tmp_path / "trace.jsonl").read_text().splitlines()
    assert lines and all(json.loads(line) for line in lines)


@pytest.mark.parametrize("name", ["plan_edge_fleet"])
def test_fleet_planner(capsys, name):
    out = run_main(name, capsys)
    assert "IMPOSSIBLE" in out or "revolve" in out
    assert "ODROID-XU4" in out
