"""Student training and the end-to-end viewpoint pipeline."""

import numpy as np
import pytest

from repro.autodiff.data import Dataset
from repro.studentteacher import (
    PipelineConfig,
    StudentConfig,
    build_student,
    run_pipeline,
    train_student,
)


@pytest.fixture(scope="module")
def pipeline_result():
    cfg = PipelineConfig(
        n_subjects=80,
        camera_skew_deg=60.0,
        angle_bins=(15.0, 30.0, 45.0, 60.0),
        student=StudentConfig(epochs=20),
        seed=0,
    )
    return run_pipeline(cfg)


class TestStudent:
    def test_builder_shapes(self):
        net = build_student(8, 5, StudentConfig(hidden=16, depth=2))
        assert len(net) == 2 * 2 + 1
        out = net.forward(np.zeros((3, 8)))
        assert out.shape == (3, 5)

    def test_training_learns_blobs(self):
        rng = np.random.default_rng(0)
        from repro.autodiff import gaussian_blobs

        data = gaussian_blobs(40, 3, 6, rng, spread=0.5, separation=6.0)
        model = train_student(data, 3, StudentConfig(epochs=20, seed=1))
        assert model.accuracy(data.x, data.y) > 0.95
        assert model.losses[-1] < model.losses[0]

    def test_checkpointed_training_matches_storeall(self):
        """rho-limited (checkpointed) training follows the same trajectory
        as store-all training — gradients are identical by construction."""
        rng = np.random.default_rng(0)
        from repro.autodiff import gaussian_blobs

        data = gaussian_blobs(20, 3, 6, rng)
        plain = train_student(data, 3, StudentConfig(epochs=5, seed=2, rho=None))
        ckpt = train_student(data, 3, StudentConfig(epochs=5, seed=2, rho=1.5))
        assert np.allclose(plain.losses, ckpt.losses, rtol=1e-12)

    def test_checkpointed_peak_not_higher(self):
        rng = np.random.default_rng(0)
        from repro.autodiff import gaussian_blobs

        data = gaussian_blobs(30, 3, 6, rng)
        plain = train_student(data, 3, StudentConfig(epochs=2, seed=2, depth=6, rho=None))
        ckpt = train_student(data, 3, StudentConfig(epochs=2, seed=2, depth=6, rho=2.0))
        assert ckpt.peak_bytes <= plain.peak_bytes


class TestPipeline:
    def test_teacher_frontal_near_perfect(self, pipeline_result):
        assert pipeline_result.teacher_frontal_accuracy > 0.95

    def test_viewpoint_gap_exists(self, pipeline_result):
        """Teacher accuracy at the most skewed bin is far below frontal."""
        worst_bin = max(pipeline_result.teacher_by_angle)
        assert pipeline_result.teacher_by_angle[worst_bin] < 0.5

    def test_student_recovers_skew(self, pipeline_result):
        """The paper's claimed mechanism works: the student beats the
        teacher at skewed angles by a wide margin."""
        assert pipeline_result.skew_recovery > 0.3
        worst_bin = max(pipeline_result.student_by_angle)
        assert pipeline_result.student_by_angle[worst_bin] > 0.7

    def test_student_does_not_sacrifice_frontal(self, pipeline_result):
        first_bin = min(pipeline_result.student_by_angle)
        assert pipeline_result.student_by_angle[first_bin] > 0.85

    def test_harvest_nontrivial(self, pipeline_result):
        assert len(pipeline_result.harvest) > 200
        assert pipeline_result.harvest.label_purity > 0.7

    def test_storage_sized(self, pipeline_result):
        assert pipeline_result.storage_bytes_needed == len(pipeline_result.harvest) * 10 * 1024

    def test_summary_renders(self, pipeline_result):
        text = pipeline_result.summary()
        assert "teacher" in text
        assert "student" in text
