"""The unified tracing/metrics layer (`repro.obs`).

Covers the ISSUE's named cases: span nesting, exception safety,
disabled-mode no-op identity, Chrome-trace JSON schema round-trip,
metrics reset between ``Trainer.fit`` calls — plus the meter's strict
release accounting and end-to-end instrumentation of the executor,
simulator, fleet and pipeline.
"""

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.autodiff import (
    DenseLayer,
    MemoryMeter,
    Momentum,
    ReLULayer,
    SequentialNet,
    Trainer,
    TrainerConfig,
    gaussian_blobs,
    run_schedule,
)
from repro.checkpointing import revolve_schedule, simulate
from repro.obs import (
    NULL_TRACER,
    Metrics,
    NullTracer,
    Tracer,
    get_metrics,
    get_tracer,
    reset_metrics,
    set_tracer,
    tracing,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts with a disabled tracer and zeroed metrics."""
    set_tracer(None)
    reset_metrics()
    yield
    set_tracer(None)
    reset_metrics()


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def make_net(rng, depth=6):
    layers = []
    prev = 6
    for i in range(depth - 1):
        layers.append(DenseLayer(prev, 8, rng, name=f"fc{i}"))
        layers.append(ReLULayer(name=f"r{i}"))
        prev = 8
    layers.append(DenseLayer(prev, 3, rng, name="head"))
    return SequentialNet(layers)


class TestTracerSpans:
    def test_nesting_records_parents(self):
        t = Tracer()
        with t.span("outer", category="a") as outer:
            with t.span("inner", category="b") as inner:
                assert inner.span.parent_id == outer.span.span_id
        spans = t.spans()
        assert [s.name for s in spans] == ["inner", "outer"]  # completion order
        assert spans[1].parent_id is None
        assert spans[0].start >= spans[1].start
        assert all(s.duration >= 0 for s in spans)

    def test_tags_and_set_tag(self):
        t = Tracer()
        with t.span("s", category="c", k=1) as h:
            h.set_tag("later", "v")
        (s,) = t.spans()
        assert s.tags == {"k": 1, "later": "v"}

    def test_exception_closes_span(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("boom", category="c"):
                raise RuntimeError("x")
        (s,) = t.spans()
        assert s.end is not None
        assert s.tags["error"] == "RuntimeError"
        # The stack unwound: a new span is again a root.
        with t.span("after", category="c"):
            pass
        assert t.spans()[-1].parent_id is None

    def test_record_hot_path_nests_under_open_span(self):
        t = Tracer()
        with t.span("outer", category="c") as outer:
            t0 = t.now()
            t.record("fast", "action", t0, arg=3)
        fast = next(s for s in t.spans() if s.name == "fast")
        assert fast.parent_id == outer.span.span_id
        assert fast.tags == {"arg": 3}

    def test_events_attach_to_open_span(self):
        t = Tracer()
        with t.span("outer", category="c") as outer:
            t.event("ping", category="cache", key="k")
        (e,) = t.events()
        assert e.parent_id == outer.span.span_id
        assert e.category == "cache"

    def test_clear_drops_buffers(self):
        t = Tracer()
        with t.span("s"):
            t.event("e")
        t.clear()
        assert t.spans() == () and t.events() == ()

    def test_threads_get_independent_stacks(self):
        t = Tracer()
        seen = {}

        def worker():
            with t.span("w", category="thread") as h:
                seen["parent"] = h.span.parent_id

        with t.span("main", category="thread"):
            th = threading.Thread(target=worker)
            th.start()
            th.join()
        # The worker's span must not nest under main's (other thread).
        assert seen["parent"] is None

    def test_categories(self):
        t = Tracer()
        with t.span("s", category="a"):
            t.event("e", category="b")
        assert t.categories() == {"a", "b"}


class TestDisabledMode:
    def test_default_tracer_is_disabled(self):
        assert isinstance(get_tracer(), NullTracer)
        assert not get_tracer().enabled

    def test_null_span_is_shared_noop(self):
        n = NullTracer()
        s1, s2 = n.span("a"), n.span("b", category="c", tag=1)
        assert s1 is s2  # no allocation per call
        with s1:
            s1.set_tag("ignored", 1)
        assert n.spans() == () and n.events() == ()
        assert n.record("x", "c", 0.0) is None
        assert n.categories() == set()
        n.event("e")
        n.clear()

    def test_executor_identical_with_and_without_tracing(self, rng):
        net = make_net(rng)
        sch = revolve_schedule(len(net), 3)
        x = rng.normal(size=(8, 6))
        y = rng.integers(0, 3, size=8)
        base = run_schedule(net, sch, x, y)
        with tracing() as tracer:
            traced = run_schedule(net, sch, x, y)
        assert traced.loss == base.loss
        assert traced.peak_bytes == base.peak_bytes
        assert {k: v for k, v in traced.grads.items()}.keys() == base.grads.keys()
        assert NULL_TRACER.spans() == ()  # nothing leaked into the null tracer
        assert any(s.category == "action" for s in tracer.spans())

    def test_tracing_restores_previous_tracer(self):
        before = get_tracer()
        with tracing() as tracer:
            assert get_tracer() is tracer
            with pytest.raises(ValueError):
                with tracing():
                    raise ValueError
            assert get_tracer() is tracer
        assert get_tracer() is before


class TestExecutorInstrumentation:
    def test_action_spans_nest_under_run(self, rng):
        net = make_net(rng)
        sch = revolve_schedule(len(net), 3)
        x = rng.normal(size=(4, 6))
        y = rng.integers(0, 3, size=4)
        with tracing() as tracer:
            res = run_schedule(net, sch, x, y)
        run = next(s for s in tracer.spans() if s.name == "run_schedule")
        actions = [s for s in tracer.spans() if s.category == "action"]
        assert len(actions) == len(sch.actions)
        assert all(a.parent_id == run.span_id for a in actions)
        assert run.tags["peak_bytes"] == res.peak_bytes
        assert run.tags["replay_steps"] == res.replay_steps
        kinds = {a.name for a in actions}
        assert {"ADVANCE", "SNAPSHOT", "RESTORE", "ADJOINT"} <= kinds
        assert get_metrics().counter("executor.replays").value == res.replay_steps

    def test_simulator_events_mirror_stats(self):
        sch = revolve_schedule(12, 3)
        with tracing() as tracer:
            stats = simulate(sch)
        events = [e for e in tracer.events() if e.category == "sim"]
        assert len(events) == len(sch.actions) + 1  # one per step + summary
        final = events[-1]
        assert final.name == "simulated"
        assert final.tags["replay_steps"] == stats.replay_steps
        assert final.tags["peak_slots"] == stats.peak_slots


class TestTrainerInstrumentation:
    def test_epoch_batch_hierarchy(self, rng):
        net = make_net(rng)
        data = gaussian_blobs(32, 3, 6, rng)
        t = Trainer(net, Momentum(net.layers, lr=0.02), TrainerConfig(epochs=2, slots=3))
        with tracing() as tracer:
            t.fit(data)
        cats = tracer.categories()
        assert {"train", "epoch", "batch", "exec", "action"} <= cats
        epochs = [s for s in tracer.spans() if s.category == "epoch"]
        assert len(epochs) == 2
        fit = next(s for s in tracer.spans() if s.name == "fit")
        assert all(e.parent_id == fit.span_id for e in epochs)
        assert "mean_loss" in epochs[0].tags

    def test_metrics_reset_between_fit_calls(self, rng):
        net = make_net(rng)
        data = gaussian_blobs(32, 3, 6, rng)
        t = Trainer(net, Momentum(net.layers, lr=0.02), TrainerConfig(epochs=2))
        t.fit(data)
        m = get_metrics()
        first_batches = m.counter("trainer.batches").value
        assert first_batches > 0
        assert m.counter("trainer.epochs").value == 2
        reset_metrics()
        assert m.counter("trainer.batches").value == 0
        assert m.gauge("trainer.loss").value == 0.0
        t.fit(data)
        assert m.counter("trainer.batches").value == first_batches
        assert m.gauge("trainer.loss").value == t.history[-1].mean_loss


class TestMetrics:
    def test_counter_gauge_histogram(self):
        m = Metrics()
        m.counter("c").inc()
        m.counter("c").inc(4)
        assert m.counter("c").value == 5
        with pytest.raises(ValueError):
            m.counter("c").inc(-1)
        m.gauge("g").set(2.5)
        m.gauge("g").max(1.0)  # keeps the running maximum
        assert m.gauge("g").value == 2.5
        h = m.histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3 and h.min == 1.0 and h.max == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_kind_conflict_raises(self):
        m = Metrics()
        m.counter("x")
        with pytest.raises(ValueError):
            m.gauge("x")

    def test_snapshot_and_reset(self):
        m = Metrics()
        m.counter("c").inc(2)
        m.gauge("g").set(1.5)
        m.histogram("h").observe(4.0)
        snap = m.snapshot()
        assert snap["c"] == {"kind": "counter", "value": 2}
        assert snap["g"] == {"kind": "gauge", "value": 1.5}
        assert snap["h"]["count"] == 1 and snap["h"]["mean"] == 4.0
        m.reset()
        snap = m.snapshot()
        assert snap["c"]["value"] == 0 and snap["h"]["count"] == 0
        m.clear()
        assert m.snapshot() == {}

    def test_counters_thread_safe(self):
        m = Metrics()

        def worker():
            for _ in range(1000):
                m.counter("n").inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert m.counter("n").value == 8000


class TestExport:
    def _traced_training(self, rng):
        net = make_net(rng)
        data = gaussian_blobs(32, 3, 6, rng)
        cfg = TrainerConfig(epochs=2, strategy="revolve", slots=3)
        with tracing() as tracer:
            Trainer(net, Momentum(net.layers, lr=0.02), cfg).fit(data)
        return tracer

    def test_chrome_trace_schema_roundtrip(self, rng, tmp_path):
        tracer = self._traced_training(rng)
        path = obs.write_chrome_trace(tmp_path / "t.json", tracer)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert events
        for ev in events:
            assert ev["ph"] in ("X", "i")
            assert {"name", "cat", "ts", "pid", "tid"} <= ev.keys()
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
        ts = [ev["ts"] for ev in events]
        assert ts == sorted(ts) and min(ts) == 0.0
        cats = {ev["cat"] for ev in events}
        assert {"epoch", "batch", "action", "cache"} <= cats
        assert "metrics" in doc["otherData"]

    def test_jsonl_every_line_valid(self, rng, tmp_path):
        tracer = self._traced_training(rng)
        path = obs.write_jsonl(tmp_path / "t.jsonl", tracer)
        lines = path.read_text().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert {p["type"] for p in parsed} == {"span", "event", "metrics"}
        assert parsed[-1]["type"] == "metrics"
        assert "trainer.loss" in parsed[-1]["values"]

    def test_summary_lists_spans_and_metrics(self, rng):
        tracer = self._traced_training(rng)
        text = obs.summary(tracer)
        assert "epoch" in text and "ADVANCE" in text
        assert "trainer.loss" in text
        assert "ckpt.schedule_cache" in text

    def test_empty_trace_exports(self):
        t = Tracer()
        doc = obs.chrome_trace(t, Metrics())
        assert doc["traceEvents"] == []
        assert "(no spans recorded)" in obs.summary(t, Metrics())
        assert json.loads(obs.to_jsonl(t, Metrics()).splitlines()[-1])["type"] == "metrics"


class TestMemoryMeterStrict:
    def test_unmatched_release_counts(self):
        m = MemoryMeter()
        m.release("ghost")
        assert m.unmatched_releases == 1
        assert get_metrics().counter("meter.unmatched_releases").value == 1

    def test_strict_raises(self):
        m = MemoryMeter(strict=True)
        with pytest.raises(KeyError):
            m.release("ghost")
        assert m.unmatched_releases == 1  # counted before raising

    def test_hold_replace_is_not_unmatched(self):
        m = MemoryMeter(strict=True)
        m.hold("x", np.zeros(10))
        m.hold("x", np.zeros(5))  # replace, not a release miss
        m.release("x")
        assert m.unmatched_releases == 0
        assert get_metrics().counter("meter.unmatched_releases").value == 0

    def test_executor_run_leaves_no_unmatched_releases(self, rng):
        net = make_net(rng)
        sch = revolve_schedule(len(net), 2)
        run_schedule(net, sch, rng.normal(size=(4, 6)), rng.integers(0, 3, size=4))
        assert get_metrics().counter("meter.unmatched_releases").value == 0
