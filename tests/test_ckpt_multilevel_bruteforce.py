"""Brute-force optimality certificate for the disk-revolve DP.

For small chains we can enumerate *every* ordered set of disk split
points and evaluate the strategy-family cost formula directly; the DP
must match the enumeration's minimum exactly.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpointing import disk_revolve_cost, opt_forwards


def brute_force(l: int, c_m: int, w: float, r: float) -> float:
    """Minimum cost over all split-point subsets of {1..l-1}.

    Cost of splits (s_1 < ... < s_k): segments [0,s_1), [s_1,s_2), ...,
    [s_k, l).  Advancing to each split costs its offset delta; each split
    is written once (plus the x_0 write when k >= 1); each *left-resume*
    pays one read (k reads total: every segment except the rightmost);
    each segment is reversed in memory at Revolve cost P(len, c_m).
    """
    c_eff = min(c_m, max(1, l - 1))
    best = float(opt_forwards(l, c_eff))  # no splits
    for k in range(1, l):
        for splits in itertools.combinations(range(1, l), k):
            bounds = [0, *splits, l]
            advance = splits[-1]
            writes = (k + 1) * w  # x_0 + every split
            reads = k * r
            reversal = sum(
                opt_forwards(bounds[i + 1] - bounds[i], min(c_eff, max(1, bounds[i + 1] - bounds[i] - 1)))
                for i in range(len(bounds) - 1)
            )
            best = min(best, advance + writes + reads + reversal)
    return best


@given(
    l=st.integers(1, 7),
    c=st.integers(1, 3),
    w=st.sampled_from([0.0, 0.25, 1.0, 3.0]),
    r=st.sampled_from([0.0, 0.5, 2.0]),
)
@settings(max_examples=60, deadline=None)
def test_dp_matches_exhaustive_minimum(l, c, w, r):
    assert disk_revolve_cost(l, c, w, r) == pytest.approx(brute_force(l, c, w, r))


def test_specific_case_by_hand():
    """l=4, c=1, free disk: write x0..x3 (4w=0), advance 3, reverse each
    1-step segment at cost 0 => total 3 = l-1."""
    assert disk_revolve_cost(4, 1, 0.0, 0.0) == 3.0
    assert brute_force(4, 1, 0.0, 0.0) == 3.0


def test_intermediate_cost_case():
    """A case where a single split is optimal, checked by hand.

    l=6, c=1, w=r=1: no splits costs P(6,1)=15.  One split at 3 costs
    3 (advance) + 2 (writes) + 1 (read) + P(3,1)+P(3,1) = 3+2+1+3+3 = 12.
    """
    assert brute_force(6, 1, 1.0, 1.0) <= 12.0
    assert disk_revolve_cost(6, 1, 1.0, 1.0) == pytest.approx(brute_force(6, 1, 1.0, 1.0))
