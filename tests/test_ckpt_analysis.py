"""Closed-form analysis: regimes, Pareto frontier, slot bounds."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpointing import (
    ParetoPoint,
    beta,
    extra_forwards,
    pareto_frontier,
    regime_table,
    rho_for_slots,
    slots_for_repetitions,
    slots_logarithmic_bound,
)
from repro.errors import PlanningError


class TestRegimes:
    def test_table_values_are_binomials(self):
        table = regime_table(3, 4)
        assert table == [(1, 4), (2, 10), (3, 20), (4, 35)]

    def test_first_regime_is_store_all_plus_one(self):
        for c in (1, 2, 5, 10):
            assert regime_table(c, 1)[0] == (1, c + 1)

    def test_validation(self):
        with pytest.raises(PlanningError):
            regime_table(0)


class TestParetoFrontier:
    @given(l=st.integers(1, 120))
    @settings(max_examples=60, deadline=None)
    def test_strictly_decreasing_extras(self, l):
        pts = pareto_frontier(l)
        extras = [p.extra_forwards for p in pts]
        assert extras == sorted(extras, reverse=True)
        assert len(set(extras)) == len(extras)  # no dominated duplicates

    @given(l=st.integers(2, 120))
    @settings(max_examples=60, deadline=None)
    def test_endpoints(self, l):
        pts = pareto_frontier(l)
        assert pts[0].slots == 1
        assert pts[0].extra_forwards == (l - 1) * (l - 2) // 2
        assert pts[-1].extra_forwards == 0

    def test_points_match_extra_forwards(self):
        for p in pareto_frontier(50):
            assert p.extra_forwards == extra_forwards(50, p.slots)

    def test_rho_matches_planner(self):
        l = 34
        for p in pareto_frontier(l):
            assert p.rho(l) == pytest.approx(rho_for_slots(l, p.slots))

    def test_single_step_chain(self):
        pts = pareto_frontier(1)
        assert len(pts) == 1
        assert pts[0].extra_forwards == 0

    def test_validation(self):
        with pytest.raises(PlanningError):
            pareto_frontier(0)


class TestSlotBounds:
    @given(l=st.integers(1, 10_000), r=st.integers(1, 6))
    @settings(max_examples=100, deadline=None)
    def test_minimality(self, l, r):
        c = slots_for_repetitions(l, r)
        assert beta(c, r) >= l
        if c > 1:
            assert beta(c - 1, r) < l

    def test_r1_is_store_all(self):
        assert slots_for_repetitions(100, 1) == 99

    def test_log_bound_scaling(self):
        """c(r=2) grows like sqrt(2l): sub-linear slot requirements."""
        for l in (50, 200, 800, 3200):
            c = slots_logarithmic_bound(l)
            assert c <= math.ceil(math.sqrt(2 * l)) + 1
            assert beta(c, 2) >= l

    def test_rho_at_log_bound_below_two(self):
        """At the r=2 slot count, the achieved rho stays <= 2."""
        for l in (18, 50, 152, 500):
            c = slots_logarithmic_bound(l)
            assert rho_for_slots(l, c) <= 2.0 + 1e-12

    def test_validation(self):
        with pytest.raises(PlanningError):
            slots_for_repetitions(0, 1)
        with pytest.raises(PlanningError):
            slots_for_repetitions(5, 0)
