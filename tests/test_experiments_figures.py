"""Section V sweep and Figure 1 reproduction — the paper's claims."""

import pytest

from repro.experiments import (
    PANELS,
    default_rhos,
    figure1_ascii,
    figure1_panel,
    section5_sweep,
    section5_table,
)
from repro.units import GB


class TestSection5:
    def test_formula_matches_execution_everywhere(self):
        rows = section5_sweep(lengths=(18, 34, 50), max_segments=10)
        assert rows
        assert all(r.consistent for r in rows)

    def test_table_renders_with_bound(self):
        text = section5_table(lengths=(18, 152), max_segments=6).render()
        assert "2sqrt(l)" in text
        assert "152" in text


class TestFigure1:
    def test_all_panels_defined(self):
        assert set(PANELS) == {"a", "b", "c", "d"}
        assert PANELS["b"] == (8, 224)
        assert PANELS["c"] == (1, 500)

    def test_default_rho_grid(self):
        rhos = default_rhos()
        assert rhos[0] == 1.0
        assert rhos[-1] == 3.0
        assert len(rhos) == 41

    @pytest.mark.parametrize("panel", sorted(PANELS))
    def test_curves_monotone_nonincreasing(self, panel):
        for series in figure1_panel(panel, "paper"):
            mems = [b for _, b in series.points]
            assert mems == sorted(mems, reverse=True), series.name

    def test_rho1_equals_store_all_tables(self):
        """At ρ=1 the panel-a curves equal the paper's Table I batch-1
        column exactly (the calibration closes the loop)."""
        from repro.memory import PAPER_TABLE1_MB

        for series in figure1_panel("a", "paper"):
            mem0 = series.points[0][1] / (1024 * 1024)
            assert mem0 == pytest.approx(PAPER_TABLE1_MB[1][series.depth], abs=0.2)

    def test_panel_b_paper_headline(self):
        """Figure 1b: at ρ=1 batch 8 only R18/R34 fit 2 GB; with ρ ≥ 1.6
        every model fits (paper Section VI)."""
        series = {s.depth: s for s in figure1_panel("b", "paper")}
        assert series[18].memory_at(1.0) <= 2 * GB
        assert series[34].memory_at(1.0) <= 2 * GB
        for depth in (50, 101, 152):
            assert series[depth].memory_at(1.0) > 2 * GB
        for depth in (18, 34, 50, 101, 152):
            rho_fit = series[depth].min_rho_under(2 * GB)
            assert rho_fit is not None and rho_fit <= 1.6

    def test_panel_d_needs_more_recompute_than_b(self):
        """500px at batch 8 is the hardest panel: fitting rho is >= the
        224px fitting rho for every model."""
        b = {s.depth: s.min_rho_under(2 * GB) for s in figure1_panel("b", "paper")}
        d = {s.depth: s.min_rho_under(2 * GB) for s in figure1_panel("d", "paper")}
        for depth, rb in b.items():
            rd = d[depth]
            if rd is not None and rb is not None:
                assert rd >= rb

    def test_panel_c_fits_somewhere(self):
        """Batch 1 at 500 px: checkpointing brings every model under
        2 GB within the swept range."""
        for s in figure1_panel("c", "paper"):
            assert s.min_rho_under(2 * GB) is not None

    def test_ours_source_same_shape(self):
        """First-principles coefficients preserve the panel-b story."""
        series = {s.depth: s for s in figure1_panel("b", "ours")}
        fits_at_1 = {d: series[d].memory_at(1.0) <= 2 * GB for d in series}
        assert fits_at_1[18] and fits_at_1[34]
        assert not fits_at_1[152]
        for d in series:
            assert series[d].min_rho_under(2 * GB) is not None

    def test_ascii_render(self):
        text = figure1_ascii("b", "paper")
        assert "LinearResNet152" in text
        assert "2GB" in text

    def test_unknown_panel(self):
        with pytest.raises(KeyError):
            figure1_panel("z")
