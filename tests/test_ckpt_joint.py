"""Joint rematerialization+paging planner: collapse properties, exact
equivalence with the pure families it generalizes, planned==measured
identities, program-IR round-trips and the Figure-1 dominance claim."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpointing import (
    ChainSpec,
    EnergyObjective,
    TimeObjective,
    UnitCostObjective,
    disk_revolve_cost,
    joint_cost,
    joint_frontier,
    joint_plan,
    joint_schedule,
    opt_forwards,
    simulate,
    simulate_tiered,
    tier_of_slot,
    validate,
)
from repro.edge.storage import EMMC, SD_CARD
from repro.errors import PlanningError, ScheduleError

BIG = 1e15


def unit_spec(l: int) -> ChainSpec:
    return ChainSpec.homogeneous(l)


def random_spec(rng, l: int) -> ChainSpec:
    acts = tuple(rng.randint(1, 1 << 20) for _ in range(l + 1))
    fwd = tuple(float(rng.randint(1, 1000)) for _ in range(l))
    return ChainSpec(name="rand", act_bytes=acts, fwd_cost=fwd, bwd_cost=fwd)


class TestCollapseProperties:
    """The joint DP's option set contains both pure families, so pricing
    one mechanism out of the market must recover the other exactly."""

    @given(l=st.integers(1, 48), c=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_infinite_paging_collapses_to_revolve(self, l, c):
        spec = unit_spec(l)
        obj = UnitCostObjective(spec, write_cost=math.inf, read_cost=math.inf)
        c_eff = min(c, max(1, l - 1))
        assert joint_cost(spec, c, obj) == opt_forwards(l, c_eff)
        sched = joint_schedule(spec, c, obj)
        assert validate(sched)
        assert all(
            tier_of_slot(a.arg) == 0 for a in sched.actions if a.kind.name != "ADJOINT"
        )
        assert simulate(sched).forward_steps == opt_forwards(l, c_eff)

    @given(l=st.integers(2, 40), c=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_infinite_recompute_collapses_to_disk_revolve(self, l, c):
        """Steps priced sky-high, paging free: every interior activation
        worth parking gets paged and nothing is ever recomputed twice."""
        spec = ChainSpec.homogeneous(l, fwd_cost=BIG)
        obj = UnitCostObjective(spec, write_cost=0.0, read_cost=0.0)
        assert joint_cost(spec, c, obj) == pytest.approx((l - 1) * BIG)
        st_tiered = simulate_tiered(joint_schedule(spec, c, obj))
        assert st_tiered.forward_steps == l - 1  # zero extra recomputation

    @given(l=st.integers(1, 40), c=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_unit_pricing_equals_disk_revolve_exactly(self, l, c):
        """At disk_revolve's own prices the joint optimum coincides with
        it — the DP is a strict generalization, not an approximation."""
        spec = unit_spec(l)
        obj = UnitCostObjective(spec, write_cost=1.0, read_cost=1.0)
        assert joint_cost(spec, c, obj) == pytest.approx(
            disk_revolve_cost(l, c), abs=1e-9
        )

    @given(
        l=st.integers(1, 36),
        c=st.integers(1, 6),
        w=st.floats(0.0, 4.0),
        r=st.floats(0.0, 4.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_weak_dominance_over_both_pure_families(self, l, c, w, r):
        spec = unit_spec(l)
        cost = joint_cost(spec, c, UnitCostObjective(spec, w, r))
        c_eff = min(c, max(1, l - 1))
        assert cost <= opt_forwards(l, c_eff) + 1e-9
        assert cost <= disk_revolve_cost(l, c, w, r) + 1e-9


class TestPlannedEqualsMeasured:
    """The DP's cost model and the tiered execution engine must agree to
    the last unit — otherwise "optimal" plans optimize a fiction."""

    @given(
        l=st.integers(1, 30),
        c=st.integers(1, 5),
        w=st.floats(0.0, 3.0),
        r=st.floats(0.0, 3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_unit_objective(self, l, c, w, r):
        spec = unit_spec(l)
        obj = UnitCostObjective(spec, w, r)
        sched = joint_schedule(spec, c, obj)
        assert validate(sched)
        t = simulate_tiered(sched)
        assert t.total_cost(w, r) == pytest.approx(joint_cost(spec, c, obj), rel=1e-9)
        assert t.peak_memory_slots <= min(c, max(1, l - 1))

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("disk", (SD_CARD, EMMC), ids=lambda d: d.name)
    def test_time_objective_on_heterogeneous_chains(self, seed, disk):
        import random

        from repro.engine.tiered import TieredBackend
        from repro.engine.vm import execute

        rng = random.Random(seed)
        spec = random_spec(rng, rng.randint(2, 18))
        c = rng.randint(1, 4)
        unit_s = 1e-9
        obj = TimeObjective(spec, disk=disk, unit_seconds=unit_s)
        sched = joint_schedule(spec, c, obj)
        run = execute(sched, TieredBackend(spec, disk=disk))
        measured = (run.forward_cost + run.replay_cost) * unit_s + run.transfer_seconds
        # The plan's cost covers forwards + I/O; replays are the final
        # adjoint passes the VM also counts, so add them symmetrically.
        planned = joint_cost(spec, c, obj) + run.replay_cost * unit_s
        assert measured == pytest.approx(planned, rel=1e-6)
        assert run.tier("memory").peak_slots <= c

    @pytest.mark.parametrize("seed", range(8))
    def test_energy_objective_on_heterogeneous_chains(self, seed):
        import random

        from repro.engine.tiered import TieredBackend
        from repro.engine.vm import execute

        rng = random.Random(100 + seed)
        spec = random_spec(rng, rng.randint(2, 18))
        c = rng.randint(1, 4)
        obj = EnergyObjective(spec, disk=SD_CARD)
        sched = joint_schedule(spec, c, obj)
        run = execute(sched, TieredBackend(spec, disk=SD_CARD))
        measured = (
            (run.forward_cost + run.replay_cost) * obj.compute_j_per_unit
            + obj.io_w * run.transfer_seconds
        )
        planned = joint_cost(spec, c, obj) + run.replay_cost * obj.compute_j_per_unit
        assert measured == pytest.approx(planned, rel=1e-6)


class TestScheduleAndProgram:
    def test_rejects_zero_slots(self):
        spec = unit_spec(5)
        with pytest.raises(ScheduleError):
            joint_plan(spec, 0)

    def test_rejects_objective_for_other_chain(self):
        with pytest.raises(PlanningError):
            joint_plan(unit_spec(5), 2, UnitCostObjective(unit_spec(6)))

    def test_plan_reports_tiers_and_splits(self):
        spec = ChainSpec.homogeneous(24, fwd_cost=10.0)
        plan = joint_plan(spec, 2, UnitCostObjective(spec, 1.0, 1.0))
        assert plan.paged and plan.tiers_used == (1,)
        assert all(0 <= pos < 24 for pos, _ in plan.splits)

    @pytest.mark.parametrize("l,c", ((7, 2), (24, 2), (24, 3), (60, 4)))
    def test_compile_decompile_round_trip_exact(self, l, c):
        from repro.engine.program import compile_schedule, decompile

        spec = unit_spec(l)
        sched = joint_schedule(spec, c, UnitCostObjective(spec, 1.0, 1.0))
        prog = compile_schedule(sched)
        assert decompile(prog) == sched
        if any(tier_of_slot(a.arg) != 0 for a in sched.actions if a.kind.name != "ADJOINT"):
            assert prog.paged
            assert any(t == 1 for t, _, _, _ in prog.tier_usage)

    @pytest.mark.parametrize("l,c", ((9, 2), (24, 3)))
    def test_interpreted_vs_compiled_byte_identical(self, l, c):
        from repro.engine.program import compile_schedule
        from repro.engine.sim import SimBackend
        from repro.engine.tiered import TieredBackend
        from repro.engine.vm import execute

        spec = unit_spec(l)
        sched = joint_schedule(spec, c, UnitCostObjective(spec, 1.0, 1.0))
        prog = compile_schedule(sched)
        for make in (lambda: SimBackend(spec), lambda: TieredBackend(spec, disk=SD_CARD)):
            assert execute(sched, make()) == execute(sched, make(), compiled=prog)


class TestFigure1Dominance:
    """The acceptance claim: on every Figure-1 panel and both storage
    profiles, the joint planner weakly dominates both pure families on
    its own objective at an equal RAM-slot budget, strictly somewhere."""

    @pytest.mark.parametrize("disk", (SD_CARD, EMMC), ids=lambda d: d.name)
    def test_all_panels_weakly_dominated_strict_somewhere(self, disk):
        from repro.experiments.figure1 import PANELS, _joint_spec

        strict = 0
        for batch, image in PANELS.values():
            for depth in (18, 152):
                spec = _joint_spec(depth, batch, image)
                pts = {
                    p.strategy: p
                    for p in joint_frontier(spec, 3, disk, unit_seconds=1.0 / 30e9)
                }
                jt, je = pts["joint_time"], pts["joint_energy"]
                pure_wall = min(pts["revolve"].wall_seconds, pts["disk_revolve"].wall_seconds)
                pure_energy = min(
                    pts["revolve"].energy_joules, pts["disk_revolve"].energy_joules
                )
                assert jt.wall_seconds <= pure_wall + 1e-9, (depth, batch, image)
                assert je.energy_joules <= pure_energy + 1e-9, (depth, batch, image)
                if jt.wall_seconds < pure_wall - 1e-6:
                    strict += 1
        assert strict >= 1

    def test_homogeneous_chain_pointwise_byte_dominance(self):
        """With equal-size activations (input included) the measured
        (peak RAM bytes, cost) pair is pointwise weakly dominant."""
        from repro.checkpointing import disk_revolve_schedule, revolve_schedule

        for l, c, w, r in ((21, 2, 1.0, 1.0), (34, 3, 0.5, 2.0), (60, 3, 2.0, 2.0)):
            spec = ChainSpec.homogeneous(l, act_bytes=1000)
            sched = joint_schedule(spec, c, UnitCostObjective(spec, w, r))
            jt = simulate_tiered(sched, spec)
            rv = simulate_tiered(revolve_schedule(l, c), spec)
            dr = simulate_tiered(disk_revolve_schedule(l, c), spec)
            assert jt.peak_memory_bytes <= min(rv.peak_memory_bytes, dr.peak_memory_bytes)
            assert jt.total_cost(w, r) <= min(rv.total_cost(w, r), dr.total_cost(w, r)) + 1e-9
