"""Paper calibration: the published tables are affine in k, quadratic in s."""

import pytest

from repro.errors import CalibrationError
from repro.memory import (
    PAPER_BATCH_SIZES,
    PAPER_IMAGE_SIZES_T3,
    PAPER_TABLE1_MB,
    PAPER_TABLE2_MB,
    PAPER_TABLE3_GB,
    calibrated_models,
    fit_paper_coefficients,
)
from repro.units import GB, MB

DEPTHS = (18, 34, 50, 101, 152)


class TestFit:
    @pytest.mark.parametrize("depth", DEPTHS)
    def test_affine_fit_reproduces_table1(self, depth):
        """Every Table I cell is reproduced to < 0.05 MB by the affine fit."""
        cal = fit_paper_coefficients(depth)
        for k in PAPER_BATCH_SIZES:
            published = PAPER_TABLE1_MB[k][depth]
            assert cal.total_mb(batch_size=k) == pytest.approx(published, abs=0.05)

    @pytest.mark.parametrize("depth", DEPTHS)
    def test_quadratic_scaling_reproduces_table2(self, depth):
        """Table II follows act(s) = act(224)·(s/224)² to ~2.5%.

        The residual (largest for the bottleneck nets at 500 px) is
        convolution rounding at image sizes that are not stride
        multiples — the paper measured real graphs, the calibration is a
        pure quadratic.
        """
        cal = fit_paper_coefficients(depth)
        for s, row in PAPER_TABLE2_MB.items():
            assert cal.total_mb(batch_size=1, image_size=s) == pytest.approx(
                row[depth], rel=0.025
            )

    @pytest.mark.parametrize("depth", DEPTHS)
    def test_table3_is_batch8_of_the_same_model(self, depth):
        cal = fit_paper_coefficients(depth)
        for s in PAPER_IMAGE_SIZES_T3:
            published_gb = PAPER_TABLE3_GB[s][depth]
            ours_gb = cal.total_bytes(batch_size=8, image_size=s) / GB
            # rel 3%: same conv-rounding residual as Table II, amplified
            # by the batch factor at 500 px.
            assert ours_gb == pytest.approx(published_gb, rel=0.03, abs=0.02)

    @pytest.mark.parametrize("depth", DEPTHS)
    def test_fixed_cost_is_about_four_weight_copies(self, depth):
        """The paper's fixed cost is 3.9-4.0x the fp32 weight size."""
        from repro.zoo import build_resnet

        cal = fit_paper_coefficients(depth)
        weights = build_resnet(depth).trainable_bytes
        ratio = cal.fixed_bytes / weights
        assert 3.85 < ratio < 4.05

    def test_unknown_depth(self):
        with pytest.raises(CalibrationError):
            fit_paper_coefficients(77)

    def test_calibrated_models_keys(self):
        assert set(calibrated_models()) == set(DEPTHS)

    def test_known_coefficients(self):
        """The R18 fit lands on the hand-derived (175.05, 55.00) MB."""
        cal = fit_paper_coefficients(18)
        assert cal.fixed_bytes / MB == pytest.approx(175.05, abs=0.05)
        assert cal.act224_bytes / MB == pytest.approx(55.00, abs=0.05)

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            fit_paper_coefficients(18).total_bytes(batch_size=0)
