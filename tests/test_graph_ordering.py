"""Memory-aware topological ordering for DAG inference."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graph import (
    Add,
    Concat,
    Conv2d,
    Graph,
    Identity,
    TensorSpec,
    greedy_min_peak_order,
    optimal_order,
    peak_memory_of_order,
)
from repro.zoo import plain_chain, tiny_residual


def wide_graph(branch_channels=(16, 2, 2)) -> Graph:
    """input -> N parallel convs -> concat: order determines peak."""
    g = Graph("wide")
    src = g.add_input("input", TensorSpec((4, 8, 8)))
    names = []
    for i, ch in enumerate(branch_channels):
        names.append(
            g.add(f"branch{i}", Conv2d(in_channels=4, out_channels=ch, kernel_size=1), [src])
        )
    merge = Concat()
    merge.arity = len(names)
    g.add("merge", merge, names)
    g.infer()
    return g


class TestPeakOfOrder:
    def test_chain_order_invariant(self):
        g = plain_chain(depth=5, features=8)
        order = g.topological_order()
        assert peak_memory_of_order(g, order) > 0

    def test_rejects_non_permutation(self):
        g = plain_chain(depth=3, features=8)
        with pytest.raises(GraphError):
            peak_memory_of_order(g, g.topological_order()[:-1])

    def test_rejects_non_topological(self):
        g = plain_chain(depth=3, features=8)
        order = g.topological_order()
        order[0], order[-1] = order[-1], order[0]
        with pytest.raises(GraphError):
            peak_memory_of_order(g, order)

    def test_outputs_stay_live(self):
        g = plain_chain(depth=2, features=8)
        g.infer()
        peak = peak_memory_of_order(g, g.topological_order())
        # final two activations co-live at the last step
        assert peak >= g.node(g.outputs[0]).output.nbytes

    def test_order_changes_peak_on_wide_graph(self):
        """Running the big branch first vs last gives different peaks."""
        g = wide_graph()
        base = ["input", "branch0", "branch1", "branch2", "merge"]
        alt = ["input", "branch1", "branch2", "branch0", "merge"]
        # Both valid topological orders; branches all stay live until the
        # merge, so here the peaks coincide — the point is they are legal.
        assert peak_memory_of_order(g, base) == peak_memory_of_order(g, alt)


def diamond_with_heavy_side() -> Graph:
    """A graph where executing the heavy side early is worse.

    input -> heavy(32ch) -> reduce(1ch) -+
    input -> light(1ch) ----------------> add? (different shapes) -> use concat
    """
    g = Graph("heavy_side")
    src = g.add_input("input", TensorSpec((2, 8, 8)))
    heavy = g.add("heavy", Conv2d(in_channels=2, out_channels=32, kernel_size=1), [src])
    hred = g.add("heavy_reduce", Conv2d(in_channels=32, out_channels=1, kernel_size=1), [heavy])
    light = g.add("light", Conv2d(in_channels=2, out_channels=1, kernel_size=1), [src])
    merge = Concat()
    merge.arity = 2
    g.add("merge", merge, [hred, light])
    g.infer()
    return g


class TestOrderingChoice:
    def test_greedy_is_valid(self):
        g = diamond_with_heavy_side()
        order = greedy_min_peak_order(g)
        peak_memory_of_order(g, order)  # raises if invalid

    def test_greedy_beats_worst_order(self):
        g = diamond_with_heavy_side()
        # Worst: run light first so it stays live through the heavy spike.
        bad = ["input", "light", "heavy", "heavy_reduce", "merge"]
        good = greedy_min_peak_order(g)
        assert peak_memory_of_order(g, good) <= peak_memory_of_order(g, bad)

    def test_optimal_no_worse_than_greedy(self):
        g = diamond_with_heavy_side()
        greedy_peak = peak_memory_of_order(g, greedy_min_peak_order(g))
        _, opt_peak = optimal_order(g)
        assert opt_peak <= greedy_peak

    def test_optimal_order_is_valid_and_achieves_peak(self):
        g = diamond_with_heavy_side()
        order, peak = optimal_order(g)
        assert peak_memory_of_order(g, order) == peak

    def test_optimal_on_residual_block(self):
        g = tiny_residual()
        # tiny_residual has ~13 nodes; within the exhaustive limit.
        order, peak = optimal_order(g, max_nodes=16)
        greedy_peak = peak_memory_of_order(g, greedy_min_peak_order(g))
        assert peak <= greedy_peak

    def test_size_guard(self):
        g = plain_chain(depth=30, features=4)
        with pytest.raises(GraphError):
            optimal_order(g, max_nodes=10)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_greedy_valid_on_random_graphs(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        g = Graph(f"r{seed}")
        src = g.add_input("input", TensorSpec((2, 4, 4)))
        frontier = [src]
        for i in range(int(rng.integers(2, 7))):
            pick = frontier[int(rng.integers(0, len(frontier)))]
            n = g.add(f"n{i}", Identity(), [pick])
            frontier.append(n)
        # merge all sinks via chained adds when shapes allow (Identity
        # preserves shapes, so they do)
        sinks = [n for n in g.topological_order() if not g.consumers(n)]
        while len(sinks) > 1:
            a, b = sinks[0], sinks[1]
            m = g.add(f"m{len(sinks)}_{a}_{b}", Add(), [a, b])
            sinks = [m] + sinks[2:]
        order = greedy_min_peak_order(g)
        peak_memory_of_order(g, order)  # must not raise
