"""Edge training-time simulation: efficiency, planning, duty cycle."""

import numpy as np
import pytest

from repro.edge import (
    DutyCycleSimulator,
    GENERIC_2GB,
    ODROID_XU4,
    TrainingWorkload,
    batch_efficiency,
    estimate_epoch,
    sweep_batch_sizes,
)
from repro.errors import MemoryBudgetError
from repro.units import GB, MB


def workload(depth=50, act_mb=144, fixed_mb=390, batch=8, images=10_000):
    return TrainingWorkload(
        model=f"ResNet{depth}",
        chain_length=depth,
        slot_act_bytes_per_sample=act_mb * MB // depth,
        fixed_bytes=fixed_mb * MB,
        flops_per_sample=8e9,
        n_images=images,
        batch_size=batch,
    )


class TestBatchEfficiency:
    def test_monotone(self):
        effs = [batch_efficiency(k) for k in (1, 2, 4, 8, 16, 32, 64)]
        assert effs == sorted(effs)

    def test_saturates_at_one(self):
        assert batch_efficiency(32) == pytest.approx(1.0)
        assert batch_efficiency(64) == pytest.approx(1.0)

    def test_floor(self):
        assert batch_efficiency(1, floor=0.2) >= 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_efficiency(0)
        with pytest.raises(ValueError):
            batch_efficiency(1, floor=0.0)


class TestEstimateEpoch:
    def test_fitting_workload_is_store_all(self):
        est = estimate_epoch(workload(batch=1), ODROID_XU4)
        assert est.plan.strategy == "store_all"
        assert est.rho == 1.0

    def test_tight_workload_uses_revolve(self):
        est = estimate_epoch(workload(batch=16), ODROID_XU4)
        assert est.plan.strategy == "revolve"
        assert est.rho > 1.0
        assert est.plan.memory_bytes <= ODROID_XU4.mem_bytes

    def test_impossible_raises(self):
        tiny = ODROID_XU4.with_memory(200 * MB)
        with pytest.raises(MemoryBudgetError):
            estimate_epoch(workload(batch=8), tiny)

    def test_epoch_seconds_decomposition(self):
        est = estimate_epoch(workload(batch=8), ODROID_XU4)
        assert est.epoch_seconds == pytest.approx(est.step_seconds * est.batches)
        assert est.samples_per_second > 0

    def test_rho_raises_step_time(self):
        """Same batch on a smaller device => recompute => slower step."""
        big = estimate_epoch(workload(batch=8), ODROID_XU4.with_memory(8 * GB))
        small = estimate_epoch(workload(batch=8), ODROID_XU4)
        if small.rho > 1.0:
            assert small.step_seconds > big.step_seconds


class TestSweep:
    def test_skips_infeasible(self):
        tiny = ODROID_XU4.with_memory(600 * MB)
        ests = sweep_batch_sizes(workload(), tiny, batch_sizes=(1, 64, 1024))
        sizes = [e.batch_size for e in ests]
        assert 1024 not in sizes

    def test_paper_section6_story(self):
        """Large batch + checkpointing beats batch-1 store-all on epoch
        time, despite rho > 1 — the paper's closing argument."""
        ests = sweep_batch_sizes(workload(), ODROID_XU4, batch_sizes=(1, 32))
        by_batch = {e.batch_size: e for e in ests}
        assert by_batch[32].plan.rho > 1.0
        assert by_batch[32].epoch_seconds < by_batch[1].epoch_seconds


class TestDutyCycle:
    def test_zero_load_passthrough(self):
        sim = DutyCycleSimulator(np.random.default_rng(0), arrival_rate_per_hour=0.0)
        res = sim.run(1000.0)
        assert res.wall_seconds == 1000.0
        assert res.preemptions == 0

    def test_expected_idle_fraction(self):
        sim = DutyCycleSimulator(np.random.default_rng(0), arrival_rate_per_hour=6.0, mean_task_seconds=300.0)
        # load = 6/3600 * 300 = 0.5 -> idle 2/3
        assert sim.expected_idle_fraction == pytest.approx(2 / 3)

    def test_simulated_matches_expectation(self):
        rng = np.random.default_rng(1)
        sim = DutyCycleSimulator(rng, arrival_rate_per_hour=12.0, mean_task_seconds=300.0)
        res = sim.run(200_000.0)
        assert res.achieved_idle_fraction == pytest.approx(sim.expected_idle_fraction, rel=0.1)

    def test_wall_at_least_compute(self):
        rng = np.random.default_rng(2)
        sim = DutyCycleSimulator(rng)
        res = sim.run(5000.0)
        assert res.wall_seconds >= res.compute_seconds
        assert res.wall_seconds == pytest.approx(res.compute_seconds + res.busy_seconds)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            DutyCycleSimulator(rng, arrival_rate_per_hour=-1)
        with pytest.raises(ValueError):
            DutyCycleSimulator(rng).run(-1.0)


class TestZeroDenominators:
    """ISSUE 2 satellite: divisions guard their zero/negative denominators."""

    def test_idle_fraction_empty_run_is_one(self):
        from repro.edge.simulator import DutyCycleResult

        res = DutyCycleResult(0.0, 0.0, 0.0, 0)
        assert res.achieved_idle_fraction == 1.0

    def test_idle_fraction_zero_wall_nonzero_compute_is_inf(self):
        from repro.edge.simulator import DutyCycleResult

        res = DutyCycleResult(10.0, 0.0, 0.0, 0)
        assert res.achieved_idle_fraction == float("inf")

    def test_idle_fraction_negative_wall_raises(self):
        from repro.edge.simulator import DutyCycleResult

        res = DutyCycleResult(10.0, -1.0, 0.0, 0)
        with pytest.raises(ValueError):
            res.achieved_idle_fraction

    def test_zero_compute_run_is_consistent(self):
        sim = DutyCycleSimulator(np.random.default_rng(0))
        res = sim.run(0.0)
        assert res.achieved_idle_fraction == 1.0

    def test_rho_guards_invalid_plan(self):
        import dataclasses

        est = estimate_epoch(workload(), GENERIC_2GB)
        assert est.rho >= 1.0
        broken = dataclasses.replace(est, plan=dataclasses.replace(est.plan, rho=0.0))
        with pytest.raises(ValueError):
            broken.rho

    def test_samples_per_second_zero_step_is_inf(self):
        import dataclasses

        est = estimate_epoch(workload(), GENERIC_2GB)
        assert est.samples_per_second > 0
        degenerate = dataclasses.replace(est, step_seconds=0.0)
        assert degenerate.samples_per_second == float("inf")
        negative = dataclasses.replace(est, step_seconds=-1.0)
        with pytest.raises(ValueError):
            negative.samples_per_second

    def test_estimate_epoch_rejects_zero_flops_device(self):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(GENERIC_2GB, cpu_gflops=0.0, gpu_gflops=0.0)

        class DeadDevice:  # duck-typed stand-in that skips Device validation
            name = "dead"
            mem_bytes = GENERIC_2GB.mem_bytes
            flops_per_s = 0.0

        with pytest.raises(ValueError):
            estimate_epoch(workload(), DeadDevice())
