"""Device-fit grids: the shaded cells of the paper's tables."""

import pytest

from repro.memory import calibrated_models, fit_grid_calibrated
from repro.units import GB


@pytest.fixture(scope="module")
def grid():
    return fit_grid_calibrated(
        calibrated_models().values(),
        batch_sizes=(1, 3, 5, 10, 30, 50),
        image_sizes=(224,),
        budget_bytes=2 * GB,
    )


class TestFitGrid:
    def test_cell_lookup(self, grid):
        cell = grid.cell("ResNet18", 1, 224)
        assert cell.total_mb == pytest.approx(230.05, abs=0.1)
        assert cell.fits

    def test_missing_cell_raises(self, grid):
        with pytest.raises(KeyError):
            grid.cell("ResNet18", 2, 224)

    def test_paper_shading_batch3(self, grid):
        """At batch 3 only ResNet-152 exceeds 2 GB (the paper's shading)."""
        over = {c.model for c in grid.shaded if c.batch_size == 3}
        assert over == {"ResNet152"}

    def test_paper_shading_batch30(self, grid):
        """At batch 30 only ResNet-18 still fits."""
        fits = {
            c.model
            for c in grid.cells
            if c.batch_size == 30 and c.fits
        }
        assert fits == {"ResNet18"}

    def test_paper_shading_batch50_none_fit(self, grid):
        fits = [c for c in grid.cells if c.batch_size == 50 and c.fits]
        assert fits == []

    def test_batch1_all_fit(self, grid):
        assert all(c.fits for c in grid.cells if c.batch_size == 1)

    def test_fitting_fraction(self, grid):
        frac = grid.fitting_fraction()
        assert 0.0 < frac < 1.0
