"""MemoryModel: scaling laws, budgets, n_max."""

import pytest

from repro.errors import MemoryBudgetError
from repro.memory import MemoryModel, memory_model_for, n_max
from repro.units import GB, MB
from repro.zoo import build_resnet


@pytest.fixture(scope="module")
def model18() -> MemoryModel:
    return memory_model_for(lambda s: build_resnet(18, image_size=s), ref_image=224)


class TestScaling:
    def test_reference_size_uses_account(self, model18):
        assert model18.act_bytes(224) == model18.account_ref.act_bytes_per_sample

    def test_quadratic_approximation_close_to_exact(self, model18):
        exact = model18.act_bytes(448, exact=True)
        approx = model18.act_bytes(448, exact=False)
        assert approx == pytest.approx(exact, rel=0.05)

    def test_exact_accounts_conv_rounding(self, model18):
        # 225 is not a multiple of the stem stride: exact > pure quadratic.
        exact = model18.act_bytes(230, exact=True)
        approx = model18.act_bytes(230, exact=False)
        assert exact != approx

    def test_total_decomposition(self, model18):
        total = model18.total_bytes(batch_size=4, image_size=224)
        assert total == model18.fixed_bytes + 4 * model18.act_bytes(224)

    def test_monotone_in_image_size(self, model18):
        sizes = [224, 350, 500]
        totals = [model18.total_bytes(1, s) for s in sizes]
        assert totals == sorted(totals)


class TestBudget:
    def test_fits_2gb_at_batch_1(self, model18):
        assert model18.fits(2 * GB, batch_size=1)

    def test_does_not_fit_at_batch_64(self, model18):
        assert not model18.fits(2 * GB, batch_size=64)

    def test_max_batch_boundary(self, model18):
        k = model18.max_batch(2 * GB)
        assert model18.fits(2 * GB, batch_size=k)
        assert not model18.fits(2 * GB, batch_size=k + 1)

    def test_max_batch_raises_when_nothing_fits(self, model18):
        with pytest.raises(MemoryBudgetError):
            model18.max_batch(100 * MB)

    def test_batch_validation(self, model18):
        with pytest.raises(ValueError):
            model18.total_bytes(batch_size=0)


class TestNMax:
    def test_paper_formula(self):
        # n_max = (M_C - M_W) / (k * M_A)
        assert n_max(budget_bytes=1000, weight_bytes=200, act_bytes_per_layer=10, batch_size=4) == 20

    def test_zero_when_weights_exceed_budget(self):
        assert n_max(100, 200, 10, 1) == 0

    def test_weight_copies(self):
        base = n_max(1000, 100, 10, 1, weight_copies=1)
        four = n_max(1000, 100, 10, 1, weight_copies=4)
        assert four < base

    def test_batch_scales_inverse(self):
        assert n_max(1000, 0, 10, 1) == 2 * n_max(1000, 0, 10, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            n_max(1000, 0, 10, 0)
