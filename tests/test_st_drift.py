"""Environmental drift: the case for *ongoing* in-situ adaptation.

A one-shot student (batch pipeline) goes stale when the world drifts;
the streaming adapter, fed fresh crossings after each drift, keeps up.
"""

import numpy as np
import pytest

from repro.studentteacher import (
    OnlineAdapter,
    OnlineConfig,
    StudentConfig,
    TeacherModel,
    ViewpointWorld,
)


def fresh_world(seed=0):
    return ViewpointWorld(num_classes=5, feature_dim=8, rng=np.random.default_rng(seed))


class TestDriftMechanics:
    def test_drift_moves_prototypes(self):
        w = fresh_world()
        before = w.prototypes.copy()
        w.drift(0.3)
        assert not np.allclose(before, w.prototypes)

    def test_norms_preserved(self):
        w = fresh_world()
        w.drift(0.5)
        norms = np.linalg.norm(w.prototypes, axis=1)
        assert np.allclose(norms, 4.0)

    def test_zero_drift_direction_only(self):
        w = fresh_world()
        before = w.prototypes.copy()
        w.drift(0.0)
        assert np.allclose(before, w.prototypes)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fresh_world().drift(-0.1)

    def test_teacher_degrades_under_drift(self):
        """Accumulated drift eventually defeats the frozen teacher (the
        nearest-prototype model is robust to small drifts — the decay
        only bites once prototypes have moved a class-distance)."""
        w = fresh_world(3)
        x, y = w.sample_frontal(200)
        teacher = TeacherModel.fit(x, y)
        before = teacher.accuracy(*w.sample_frontal(200)[:2])
        for _ in range(7):
            w.drift(0.5)
        x2, y2 = w.sample_frontal(200)
        after = teacher.accuracy(x2, y2)
        assert after < before - 0.15


class TestContinualAdaptation:
    def test_online_adapter_tracks_drift(self):
        """Across drift events, the continually-updated student stays
        accurate while the pre-drift snapshot decays."""
        w = fresh_world(1)
        x_tr, y_tr = w.sample_frontal(200)
        teacher = TeacherModel.fit(x_tr, y_tr)
        adapter = OnlineAdapter(
            teacher,
            8,
            5,
            OnlineConfig(buffer_max=800, student=StudentConfig(epochs=1)),
            seed=2,
        )

        def eval_now(model_forward) -> float:
            xs, ys, _ = w.sample_at_angles(60, np.linspace(-20, 20, 9))
            return float((model_forward(xs).argmax(axis=1) == ys).mean())

        # Phase 1: adapt on the initial world.
        ep = w.generate_episode(n_subjects=60, frames_per_crossing=15, camera_skew_deg=40.0)
        for f in ep.frames:
            adapter.process_frame(f)
        adapter.finalize()
        acc_phase1 = eval_now(adapter.student.forward)
        assert acc_phase1 > 0.8

        # Freeze a snapshot of the phase-1 student.
        import copy

        frozen = copy.deepcopy(adapter.student)

        # Phase 2: the world drifts; keep streaming.  The teacher also
        # degrades, so refresh it centrally (the realistic deployment:
        # occasional teacher updates, continuous student adaptation).
        for _ in range(6):
            w.drift(0.5)
        adapter.teacher = TeacherModel.fit(*w.sample_frontal(200))
        ep2 = w.generate_episode(n_subjects=60, frames_per_crossing=15, camera_skew_deg=40.0)
        for f in ep2.frames:
            adapter.process_frame(f)
        adapter.finalize()

        acc_live = eval_now(adapter.student.forward)
        acc_frozen = eval_now(frozen.forward)
        assert acc_live > acc_frozen + 0.05
        assert acc_live > 0.7
