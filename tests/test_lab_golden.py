"""Golden round-trips: every spec's renderers vs the legacy functions.

For each registered spec: the ascii rendering of a computed payload is
byte-identical to the hand-written generator it replaced, the json
rendering parses back to the payload, and csv renderings parse back to
the payload's numbers.
"""

import csv
import io
import json

import pytest

from repro import lab
from repro.experiments import (
    SUMMARY_DEPS,
    compare_to_paper,
    extended_model_table,
    figure1_ascii,
    section5_table,
    sensitivity_table,
    strategy_ablation_table,
    table1,
    table2,
    table3,
)

_PAYLOADS: dict = {}


def payload(name, params=None):
    key = (name, lab.canonical_params(lab.get_spec(name).validate_params(params)))
    if key not in _PAYLOADS:
        _PAYLOADS[key] = lab.compute_payload(name, params)
    return _PAYLOADS[key]


def render(name, fmt, params=None):
    return lab.get_spec(name).renderers[fmt](payload(name, params))


class TestJsonRoundTrip:
    @pytest.mark.parametrize("name", [
        "table1", "table2", "table3", "section5", "figure1",
        "ablation", "sensitivity", "extended", "summary",
    ])
    def test_json_parses_back_to_payload(self, name):
        spec = lab.get_spec(name)
        doc = payload(name)
        assert "json" in spec.renderers
        assert json.loads(spec.renderers["json"](doc)) == doc


class TestTables:
    @pytest.mark.parametrize("name,gen", [
        ("table1", table1), ("table2", table2), ("table3", table3),
    ])
    def test_ascii_matches_legacy(self, name, gen):
        for source in ("ours", "paper"):
            legacy = gen(source).as_table().render()
            assert render(name, "ascii", {"source": source}) == legacy

    @pytest.mark.parametrize("name", ["table1", "table2", "table3"])
    def test_compare_matches_legacy(self, name):
        assert render(name, "compare") == compare_to_paper(name).render()

    @pytest.mark.parametrize("name,gen", [
        ("table1", table1), ("table2", table2), ("table3", table3),
    ])
    def test_csv_parses_back(self, name, gen):
        result = gen("ours")
        rows = list(csv.reader(io.StringIO(render(name, "csv"))))
        assert len(rows) == 1 + len(result.rows)
        for parsed, r in zip(rows[1:], result.rows):
            assert parsed[0] == str(r)
            for cell, d in zip(parsed[1:], result.depths):
                assert float(cell.rstrip("*")) == pytest.approx(
                    result.value(r, d), abs=0.01
                )


class TestSection5:
    def test_ascii_matches_legacy(self):
        assert render("section5", "ascii") == section5_table().render()

    def test_params_flow_through(self):
        doc = payload("section5", {"max_segments": 8})
        assert doc["max_segments"] == 8
        assert render("section5", "ascii", {"max_segments": 8}) == \
            section5_table(max_segments=8).render()


class TestFigure1:
    @pytest.mark.parametrize("panel", ["a", "b", "c", "d"])
    def test_ascii_matches_legacy(self, panel):
        assert render("figure1", "ascii", {"panel": panel}) == \
            figure1_ascii(panel, "paper")

    def test_ours_source(self):
        assert render("figure1", "ascii", {"source": "ours"}) == \
            figure1_ascii("b", "ours")

    def test_csv_parses_back(self):
        doc = payload("figure1")
        lines = render("figure1", "csv").splitlines()
        assert lines[0] == "model,rho,memory_mb"
        assert len(lines) == 1 + len(doc["records"])
        name, rho, mb = lines[1].split(",")
        rec = doc["records"][0]
        assert name == rec["model"]
        assert float(rho) == pytest.approx(rec["rho"], abs=1e-4)
        assert float(mb) == pytest.approx(rec["memory_mb"], abs=0.01)


class TestAblationSensitivityExtended:
    def test_ablation_matches_legacy(self):
        assert render("ablation", "ascii") == strategy_ablation_table().render()

    def test_ablation_infeasible_encodes_none(self):
        doc = payload("ablation", {"lengths": (18,), "slot_budgets": (3,)})
        assert any(r["rho"] is None for r in doc["records"])  # infeasible cells

    def test_sensitivity_matches_legacy(self):
        assert render("sensitivity", "ascii") == sensitivity_table().render()

    def test_extended_matches_legacy(self):
        assert render("extended", "ascii") == extended_model_table().render()


class TestSummary:
    def test_sections_are_dep_renders(self):
        doc = payload("summary")
        assert [s["spec"] for s in doc["sections"]] == [s for s, _ in SUMMARY_DEPS]
        for section in doc["sections"]:
            dep_name = section["spec"]
            dep_params = dict(SUMMARY_DEPS)[dep_name]
            expected = lab.get_spec(dep_name).renderers["ascii"](
                payload(dep_name, dep_params)
            )
            assert section["text"] == expected

    def test_ascii_is_section_concatenation(self):
        doc = payload("summary")
        out = render("summary", "ascii")
        for section in doc["sections"]:
            assert section["text"] in out
        assert "Table I" in out and "Figure 1b" in out
