"""Cross-module integration: the library's end-to-end flows."""

import numpy as np
import pytest

from repro.autodiff import DenseLayer, ReLULayer, SequentialNet, run_schedule
from repro.checkpointing import (
    ChainSpec,
    plan_training,
    revolve_schedule,
    simulate,
    slots_for_rho,
)
from repro.edge import ODROID_XU4, TrainingWorkload, estimate_epoch
from repro.graph import homogenize, linearize
from repro.memory import account, memory_model_for
from repro.units import GB
from repro.zoo import build_resnet


class TestPaperPipeline:
    """Graph -> memory model -> homogenized chain -> plan -> schedule."""

    @pytest.fixture(scope="class")
    def r50(self):
        return build_resnet(50)

    def test_full_figure1_point(self, r50):
        acct = account(r50)
        chain = homogenize(r50, depth=50)
        plan = plan_training(
            l=50,
            fixed_bytes=acct.fixed_bytes,
            slot_bytes=8 * chain.act_bytes,
            budget_bytes=GB,  # force checkpointing with a 1 GB budget
        )
        assert plan.strategy == "revolve"
        sch = revolve_schedule(50, plan.slots)
        spec = ChainSpec.from_linear_chain(chain)
        stats = simulate(sch, spec)
        # The executed schedule achieves exactly the planned rho.
        assert stats.recompute_factor(spec) == pytest.approx(plan.rho)
        # And its byte-weighted peak respects the planner's accounting.
        measured = acct.fixed_bytes + 8 * (stats.peak_bytes)
        assert measured <= plan.memory_bytes + 8 * chain.act_bytes

    def test_memory_model_to_edge_plan(self, r50):
        model = memory_model_for(lambda s: build_resnet(50, image_size=s))
        workload = TrainingWorkload(
            model="ResNet50",
            chain_length=50,
            slot_act_bytes_per_sample=model.account_ref.act_bytes_per_sample // 50,
            fixed_bytes=model.fixed_bytes,
            flops_per_sample=float(r50.total_flops_per_sample()),
            n_images=1000,
            batch_size=16,
        )
        est = estimate_epoch(workload, ODROID_XU4)
        assert est.plan.memory_bytes <= ODROID_XU4.mem_bytes
        assert est.epoch_seconds > 0


class TestRealChainCheckpointing:
    """Linearize a real residual DAG and checkpoint its block chain."""

    def test_resnet_block_chain_schedulable(self):
        g = build_resnet(18, image_size=64)
        seg = linearize(g)
        spec = ChainSpec.from_segment_chain(seg)
        sch = revolve_schedule(spec.length, 3)
        stats = simulate(sch, spec)
        assert stats.peak_slot_bytes < spec.store_all_bytes

    def test_planner_rho_realized_on_real_training(self):
        """slots_for_rho -> schedule -> real NumPy training: the measured
        advance count stays within the rho budget."""
        rng = np.random.default_rng(0)
        depth = 12
        layers = []
        for i in range(depth - 1):
            layers.append(DenseLayer(8, 8, rng, name=f"fc{i}"))
        layers.append(DenseLayer(8, 2, rng, name="head"))
        net = SequentialNet(layers)
        rho = 1.5
        slots = slots_for_rho(depth, rho)
        sch = revolve_schedule(depth, slots)
        x = rng.normal(size=(4, 8))
        y = rng.integers(0, 2, size=4)
        res = run_schedule(net, sch, x, y)
        extra = res.forward_steps - (depth - 1)
        assert extra <= (rho - 1.0) * 2 * depth + 1e-9


class TestConsistencyAcrossSubsystems:
    def test_three_memory_paths_agree(self):
        """account(), homogenize() and the planner describe the same
        store-all footprint."""
        g = build_resnet(34, image_size=112)
        acct = account(g)
        chain = homogenize(g, depth=34)
        k = 4
        from repro.checkpointing import memory_for_slots

        planner_total = memory_for_slots(33, acct.fixed_bytes, k * chain.act_bytes)
        table_total = acct.total_bytes(k)
        # Equal up to the homogenization's integer division remainder.
        assert planner_total == pytest.approx(table_total, rel=0.001)

    def test_simulator_and_executor_agree_on_forward_counts(self):
        rng = np.random.default_rng(1)
        depth, slots = 10, 3
        layers = [DenseLayer(6, 6, rng, name=f"f{i}") for i in range(depth - 1)]
        layers.append(DenseLayer(6, 2, rng, name="head"))
        net = SequentialNet(layers)
        sch = revolve_schedule(depth, slots)
        stats = simulate(sch)
        res = run_schedule(net, sch, rng.normal(size=(3, 6)), rng.integers(0, 2, size=3))
        assert res.forward_steps == stats.forward_steps
        assert res.replay_steps == stats.replay_steps
