"""Fleet simulation: isolation vs federation, communication priced."""

import pytest

from repro.edge import FleetConfig, simulate_fleet
from repro.errors import PlanningError


def cfg(**kw):
    base = dict(n_nodes=8, days=20, seed=3)
    base.update(kw)
    return FleetConfig(**base)


class TestFleet:
    def test_isolated_no_radio(self):
        res = simulate_fleet(cfg(federation_period=0))
        assert res.radio_bytes_total == 0

    def test_federated_pays_radio(self):
        res = simulate_fleet(cfg(federation_period=5))
        # 4 rounds x 2 x model_bytes x nodes
        assert res.radio_bytes_total == 4 * 2 * 50_000_000 * 8

    def test_accuracy_trajectories_monotone(self):
        res = simulate_fleet(cfg())
        means = [d.mean_accuracy for d in res.days]
        assert means == sorted(means)

    def test_federation_helps_slow_nodes(self):
        """Sharing lifts the fleet *minimum* (low-traffic nodes gain most)."""
        iso = simulate_fleet(cfg(federation_period=0))
        fed = simulate_fleet(cfg(federation_period=5))
        assert fed.worst_final_accuracy >= iso.worst_final_accuracy

    def test_low_transfer_value_limits_benefit(self):
        """The paper's caveat: viewpoint-specific knowledge transfers
        poorly, so federation's gain shrinks with transfer_value."""
        none = simulate_fleet(cfg(federation_period=5, transfer_value=0.0))
        some = simulate_fleet(cfg(federation_period=5, transfer_value=0.5))
        assert some.mean_final_accuracy >= none.mean_final_accuracy
        iso = simulate_fleet(cfg(federation_period=0))
        assert none.mean_final_accuracy == pytest.approx(iso.mean_final_accuracy)

    def test_heterogeneous_traffic(self):
        res = simulate_fleet(cfg(days=30))
        accs = res.final_accuracies
        assert max(accs) - min(accs) > 0.0  # nodes genuinely differ

    def test_day_reaching_target(self):
        res = simulate_fleet(cfg(days=60, crossings_per_day_mean=200.0))
        day = res.day_reaching(0.7)
        assert day is not None
        assert res.days[day - 1].min_accuracy >= 0.7

    def test_deterministic_under_seed(self):
        a = simulate_fleet(cfg(seed=11))
        b = simulate_fleet(cfg(seed=11))
        assert a.final_accuracies == b.final_accuracies

    def test_validation(self):
        with pytest.raises(PlanningError):
            FleetConfig(n_nodes=0)
        with pytest.raises(PlanningError):
            FleetConfig(transfer_value=1.5)
        with pytest.raises(PlanningError):
            FleetConfig(federation_period=-1)
        with pytest.raises(PlanningError):
            FleetConfig(crash_rate_per_day=1.0)
        with pytest.raises(PlanningError):
            FleetConfig(snapshot_period_days=0)
        with pytest.raises(PlanningError):
            FleetConfig(outage_days_mean=-0.5)


class TestFleetFaults:
    def test_happy_path_rng_stream_unchanged(self):
        """crash_rate=0 must draw exactly the random stream the pre-fault
        simulator drew: seeded happy-path results are frozen."""
        res = simulate_fleet(cfg())
        assert res.total_crashes == 0
        assert res.total_lost_samples == 0.0
        assert all(d.nodes_up == 8 for d in res.days)

    def test_crashes_lose_work_and_rejoin(self):
        res = simulate_fleet(
            cfg(days=40, crash_rate_per_day=0.08, outage_days_mean=2.0)
        )
        assert res.total_crashes > 0
        assert res.total_lost_samples > 0
        assert sum(res.downtime_days) > 0
        # nodes rejoin: the fleet is never permanently dark
        assert res.days[-1].nodes_up > 0
        assert len(res.crashes) == len(res.lost_samples) == 8

    def test_graceful_degradation(self):
        """Accuracy under faults degrades but does not collapse."""
        happy = simulate_fleet(cfg(days=40))
        faulty = simulate_fleet(cfg(days=40, crash_rate_per_day=0.08))
        assert faulty.mean_final_accuracy <= happy.mean_final_accuracy
        assert faulty.mean_final_accuracy > 0.5 * happy.mean_final_accuracy

    def test_frequent_snapshots_bound_losses(self):
        """Daily snapshots lose at most one day of harvest per crash;
        sparse snapshots lose more."""
        daily = simulate_fleet(
            cfg(days=60, crash_rate_per_day=0.1, snapshot_period_days=1)
        )
        sparse = simulate_fleet(
            cfg(days=60, crash_rate_per_day=0.1, snapshot_period_days=10)
        )
        assert daily.total_crashes > 0 and sparse.total_crashes > 0
        assert (
            sparse.total_lost_samples / sparse.total_crashes
            > daily.total_lost_samples / daily.total_crashes
        )

    def test_deterministic_under_seed(self):
        a = simulate_fleet(cfg(crash_rate_per_day=0.1, seed=5))
        b = simulate_fleet(cfg(crash_rate_per_day=0.1, seed=5))
        assert a.crashes == b.crashes
        assert a.lost_samples == b.lost_samples
        assert a.final_accuracies == b.final_accuracies

    def test_zero_outage_rejoins_next_day(self):
        res = simulate_fleet(
            cfg(days=30, crash_rate_per_day=0.2, outage_days_mean=0.0)
        )
        assert res.total_crashes > 0
        assert sum(res.downtime_days) == 0

    def test_crash_events_traced(self):
        from repro.obs import tracing

        with tracing() as tracer:
            res = simulate_fleet(cfg(days=40, crash_rate_per_day=0.1))
        events = [e for e in tracer.events() if e.name == "node_crash"]
        assert len(events) == res.total_crashes
        assert all(e.category == "fault" for e in events)
        assert {"day", "node", "lost_samples", "rejoin_day"} <= set(events[0].tags)


class TestFleetValidationEdges:
    def test_subunit_outage_mean_clamps_to_one_day(self):
        """outage_days_mean < 1 clamps the geometric's p to 1: every
        outage is exactly one extra day, never zero or fractional."""
        res = simulate_fleet(
            cfg(days=60, crash_rate_per_day=0.2, outage_days_mean=0.3)
        )
        assert res.total_crashes > 0
        assert sum(res.downtime_days) == res.total_crashes  # one day each

    def test_outage_mean_exactly_one_behaves_like_subunit(self):
        """The clamp boundary: mean=1.0 also gives p=1, so the two
        configs share crash counts (same stream) and downtime."""
        lo = simulate_fleet(cfg(days=60, crash_rate_per_day=0.2, outage_days_mean=0.3))
        one = simulate_fleet(cfg(days=60, crash_rate_per_day=0.2, outage_days_mean=1.0))
        assert lo.crashes == one.crashes
        assert lo.downtime_days == one.downtime_days

    def test_crash_on_snapshot_day_keeps_prior_snapshot(self):
        """A crash fires before the day's durable write: work since the
        *previous* snapshot is lost even when the crash day itself is a
        snapshot day, so sparse cadences leak more per crash."""
        sparse = simulate_fleet(
            cfg(n_nodes=200, days=60, crash_rate_per_day=0.1, snapshot_period_days=5)
        )
        assert sparse.total_crashes > 0
        # Mean harvest is hundreds of images/day; if the crash-day
        # snapshot were (wrongly) taken first, per-crash loss would be
        # bounded by a single day's harvest.
        assert sparse.total_lost_samples / sparse.total_crashes > 1000.0

    def test_snapshot_every_day_loses_at_most_one_day(self):
        res = simulate_fleet(
            cfg(n_nodes=200, days=60, crash_rate_per_day=0.1, snapshot_period_days=1)
        )
        assert res.total_crashes > 0
        # crossings 60/day x 18 img: one lost day is ~1080 on average
        assert res.total_lost_samples / res.total_crashes < 3000.0

    def test_quantize_effective_matches_int_truncation(self):
        import numpy as np

        from repro.edge import quantize_effective

        e = np.array([0.0, 0.4, 1.0, 17.9, 1234.5])
        assert quantize_effective(e).tolist() == [float(int(x)) for x in e]
