"""Fleet simulation: isolation vs federation, communication priced."""

import pytest

from repro.edge import FleetConfig, simulate_fleet
from repro.errors import PlanningError


def cfg(**kw):
    base = dict(n_nodes=8, days=20, seed=3)
    base.update(kw)
    return FleetConfig(**base)


class TestFleet:
    def test_isolated_no_radio(self):
        res = simulate_fleet(cfg(federation_period=0))
        assert res.radio_bytes_total == 0

    def test_federated_pays_radio(self):
        res = simulate_fleet(cfg(federation_period=5))
        # 4 rounds x 2 x model_bytes x nodes
        assert res.radio_bytes_total == 4 * 2 * 50_000_000 * 8

    def test_accuracy_trajectories_monotone(self):
        res = simulate_fleet(cfg())
        means = [d.mean_accuracy for d in res.days]
        assert means == sorted(means)

    def test_federation_helps_slow_nodes(self):
        """Sharing lifts the fleet *minimum* (low-traffic nodes gain most)."""
        iso = simulate_fleet(cfg(federation_period=0))
        fed = simulate_fleet(cfg(federation_period=5))
        assert fed.worst_final_accuracy >= iso.worst_final_accuracy

    def test_low_transfer_value_limits_benefit(self):
        """The paper's caveat: viewpoint-specific knowledge transfers
        poorly, so federation's gain shrinks with transfer_value."""
        none = simulate_fleet(cfg(federation_period=5, transfer_value=0.0))
        some = simulate_fleet(cfg(federation_period=5, transfer_value=0.5))
        assert some.mean_final_accuracy >= none.mean_final_accuracy
        iso = simulate_fleet(cfg(federation_period=0))
        assert none.mean_final_accuracy == pytest.approx(iso.mean_final_accuracy)

    def test_heterogeneous_traffic(self):
        res = simulate_fleet(cfg(days=30))
        accs = res.final_accuracies
        assert max(accs) - min(accs) > 0.0  # nodes genuinely differ

    def test_day_reaching_target(self):
        res = simulate_fleet(cfg(days=60, crossings_per_day_mean=200.0))
        day = res.day_reaching(0.7)
        assert day is not None
        assert res.days[day - 1].min_accuracy >= 0.7

    def test_deterministic_under_seed(self):
        a = simulate_fleet(cfg(seed=11))
        b = simulate_fleet(cfg(seed=11))
        assert a.final_accuracies == b.final_accuracies

    def test_validation(self):
        with pytest.raises(PlanningError):
            FleetConfig(n_nodes=0)
        with pytest.raises(PlanningError):
            FleetConfig(transfer_value=1.5)
        with pytest.raises(PlanningError):
            FleetConfig(federation_period=-1)
