"""The flat program IR: round-trip, differential and cache-layer tests.

The compiler must be a lossless, validation-complete lowering: compile →
decompile reproduces the exact Schedule for every strategy family, the
compiled paths (vectorized sim, generic dispatch, traced) produce
bit-identical RunStats/TierStats/StepStats to the interpreted loop, and
every invariant violation raises the same ExecutionError text at
compile time that the interpreter raises at run time.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.checkpointing import (
    ChainSpec,
    Schedule,
    program_cache_info,
    schedule_cache_info,
    set_program_store,
    simulate,
    slots_for_rho,
    slots_for_rhos,
)
from repro.checkpointing.actions import Action, ActionKind
from repro.checkpointing.strategies import available_strategies, get_strategy
from repro.edge.storage import SD_CARD
from repro.engine import (
    SimBackend,
    TieredBackend,
    compile_schedule,
    decompile,
    execute,
    program_from_payload,
)
from repro.errors import ExecutionError, ScheduleError
from repro.lab import ArtifactStore

FAMILIES = available_strategies()


def _random_spec(l: int, seed: int) -> ChainSpec:
    rng = np.random.default_rng(seed)
    return ChainSpec(
        name=f"h{seed}",
        act_bytes=tuple(int(b) for b in rng.integers(1, 2048, l + 1)),
        fwd_cost=tuple(float(f) for f in rng.uniform(0.1, 3.0, l)),
        bwd_cost=tuple(float(f) for f in rng.uniform(0.1, 3.0, l)),
    )


class TestRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(
        family=st.sampled_from(FAMILIES),
        l=st.integers(min_value=2, max_value=12),
        slots=st.integers(min_value=1, max_value=8),
    )
    def test_compile_decompile_is_identity(self, family, l, slots):
        strat = get_strategy(family)
        assume(strat.feasible(l, slots))
        sch = strat.build_schedule(l, slots)
        assert decompile(compile_schedule(sch)) == sch

    def test_payload_roundtrip_preserves_digest(self):
        sch = get_strategy("revolve").build_schedule(21, 4)
        program = compile_schedule(sch)
        rebuilt = program_from_payload(program.to_payload())
        assert rebuilt.digest == program.digest
        assert decompile(rebuilt) == sch

    def test_digest_depends_on_actions(self):
        a = compile_schedule(get_strategy("revolve").build_schedule(13, 3))
        b = compile_schedule(get_strategy("revolve").build_schedule(13, 4))
        assert a.digest != b.digest

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda p: p.pop("digest"),
            lambda p: p.update(digest="0" * 64),
            lambda p: p.update(version=99),
            lambda p: p.update(opcodes=p["opcodes"][:-1]),
            lambda p: p["opcodes"].__setitem__(0, 17),
            lambda p: p["args"].__setitem__(0, 10**6),
        ],
    )
    def test_tampered_payload_is_rejected(self, corrupt):
        payload = compile_schedule(
            get_strategy("revolve").build_schedule(8, 3)
        ).to_payload()
        corrupt(payload)
        with pytest.raises(ScheduleError):
            program_from_payload(payload)


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(
        family=st.sampled_from(FAMILIES),
        l=st.integers(min_value=2, max_value=10),
        slots=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_sim_stats_bit_identical(self, family, l, slots, seed):
        strat = get_strategy(family)
        assume(strat.feasible(l, slots))
        sch = strat.build_schedule(l, slots)
        program = compile_schedule(sch)
        for spec in (ChainSpec.homogeneous(l), _random_spec(l, seed)):
            interpreted = execute(sch, SimBackend(spec))
            compiled = execute(sch, SimBackend(spec), compiled=program)
            assert compiled == interpreted

    @pytest.mark.parametrize("family", FAMILIES)
    def test_tier_stats_bit_identical(self, family):
        strat = get_strategy(family)
        l, slots = 13, 3
        if not strat.feasible(l, slots):
            l, slots = 13, 12
        sch = strat.build_schedule(l, slots)
        program = compile_schedule(sch)
        spec = ChainSpec.homogeneous(l, act_bytes=4096)
        interpreted = execute(sch, TieredBackend(spec, disk=SD_CARD))
        compiled = execute(
            sch, TieredBackend(spec, disk=SD_CARD), compiled=program
        )
        assert compiled == interpreted
        assert compiled.tiers == interpreted.tiers

    def test_traced_step_stats_identical_shapes(self):
        sch = get_strategy("revolve").build_schedule(13, 3)
        program = compile_schedule(sch)
        spec = ChainSpec.homogeneous(13)
        interp_steps, comp_steps = [], []
        a = execute(sch, SimBackend(spec), on_step=interp_steps.append)
        b = execute(
            sch, SimBackend(spec), on_step=comp_steps.append, compiled=program
        )
        assert a == b
        assert len(interp_steps) == len(comp_steps) == len(sch.actions)
        for x, y in zip(interp_steps, comp_steps):
            dx, dy = dataclasses.asdict(x), dataclasses.asdict(y)
            dx.pop("started"), dy.pop("started")
            assert dx == dy

    def test_simulate_compiled_kwarg_matches(self):
        sch = get_strategy("sqrt").build_schedule(16, 8)
        program = compile_schedule(sch)
        assert simulate(sch, compiled=program) == simulate(sch)

    def test_mismatched_program_is_rejected(self):
        sch = get_strategy("revolve").build_schedule(8, 3)
        other = compile_schedule(get_strategy("revolve").build_schedule(8, 4))
        with pytest.raises(ExecutionError, match="does not match schedule"):
            execute(sch, SimBackend(ChainSpec.homogeneous(8)), compiled=other)


def _sched(l, slots, *actions):
    return Schedule(strategy="bad", length=l, slots=slots, actions=actions)


_A = ActionKind.ADVANCE
_S = ActionKind.SNAPSHOT
_R = ActionKind.RESTORE
_F = ActionKind.FREE
_J = ActionKind.ADJOINT


class TestErrorParity:
    """compile_schedule must fail exactly like the interpreted loop."""

    BAD = [
        _sched(3, 1, Action(_A, 2), Action(_A, 1)),  # backwards advance
        _sched(3, 1, Action(_A, 4)),  # past the chain
        _sched(3, 1, Action(_S, 1)),  # slot over budget
        _sched(3, 2, Action(_S, 0), Action(_A, 1), Action(_S, 0)),  # occupied
        _sched(3, 1, Action(_R, 0)),  # restore empty
        _sched(3, 1, Action(_F, 0)),  # free empty
        _sched(3, 1, Action(_A, 3), Action(_J, 2)),  # adjoint out of order
        _sched(3, 1, Action(_A, 1), Action(_J, 3)),  # cursor not parked
        _sched(3, 1, Action(_A, 3), Action(_J, 3)),  # backwards left pending
    ]

    @pytest.mark.parametrize("bad", BAD)
    def test_same_message_compiled_and_interpreted(self, bad):
        with pytest.raises(ExecutionError) as interpreted:
            execute(bad, SimBackend(ChainSpec.homogeneous(bad.length)))
        with pytest.raises(ExecutionError) as compiled:
            compile_schedule(bad)
        assert str(compiled.value) == str(interpreted.value)


@pytest.mark.usefixtures("fresh_schedule_cache")
class TestProgramCache:
    def test_memory_layer_hits(self):
        strat = get_strategy("revolve")
        first = strat.compiled(21, 4)
        second = strat.compiled(21, 4)
        assert second is first
        info = program_cache_info()
        assert (info.hits, info.misses, info.programs) == (1, 1, 1)
        assert (info.store_hits, info.store_writes) == (0, 0)

    def test_compiled_seeds_schedule_cache(self):
        strat = get_strategy("revolve")
        program = strat.compiled(13, 3)
        assert strat.schedule(13, 3) == decompile(program)
        # the decompiled schedule was seeded, so that lookup was a hit
        assert schedule_cache_info().hits >= 1

    def test_clear_drops_program_layer(self):
        get_strategy("revolve").compiled(13, 3)
        from repro.checkpointing import clear_schedule_cache

        clear_schedule_cache()
        info = program_cache_info()
        assert info == type(info)(0, 0, 0, 0, 0)

    def test_store_round_trip_across_caches(self, tmp_path):
        from repro.checkpointing import clear_schedule_cache

        store = ArtifactStore(tmp_path)
        set_program_store(store)
        strat = get_strategy("revolve")
        program = strat.compiled(21, 4)
        assert program_cache_info().store_writes == 1
        files = list((tmp_path / "programs").glob("*.json"))
        assert len(files) == 1
        # a fresh cache (new process stand-in) hydrates from the store
        clear_schedule_cache()
        set_program_store(store)
        rehydrated = strat.compiled(21, 4)
        info = program_cache_info()
        assert (info.store_hits, info.store_writes) == (1, 0)
        assert rehydrated.digest == program.digest

    def test_corrupt_store_entry_recompiled(self, tmp_path):
        from repro.checkpointing import clear_schedule_cache

        store = ArtifactStore(tmp_path)
        set_program_store(store)
        strat = get_strategy("revolve")
        strat.compiled(13, 3)
        path = next((tmp_path / "programs").glob("*.json"))
        path.write_text('{"version": 1, "garbage": true}')
        clear_schedule_cache()
        set_program_store(store)
        program = strat.compiled(13, 3)
        info = program_cache_info()
        assert (info.store_hits, info.store_writes) == (0, 1)
        assert decompile(program) == strat.schedule(13, 3)

    def test_measured_matches_direct_simulation(self):
        strat = get_strategy("disk_revolve")
        direct = simulate(strat.build_schedule(21, 3))
        assert strat.measured(21, 3) == direct


class TestBatchedPlanner:
    @pytest.mark.parametrize("l", [1, 2, 3, 5, 18, 34, 152])
    def test_matches_scalar_inversion(self, l):
        rhos = [1.0, 1.001, 1.05, 1.2, 1.5, 2.0, 3.0, 10.0]
        assert slots_for_rhos(l, rhos) == [slots_for_rho(l, r) for r in rhos]

    def test_rejects_rho_below_one(self):
        from repro.errors import PlanningError

        with pytest.raises(PlanningError, match="recompute factor"):
            slots_for_rhos(10, [1.5, 0.9])

    def test_empty_grid(self):
        assert slots_for_rhos(10, []) == []
