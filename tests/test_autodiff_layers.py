"""Layer-level gradient checks: backward-from-input must be exact."""

import numpy as np
import pytest

from repro.autodiff import (
    BatchNormLayer,
    ConvLayer,
    DenseLayer,
    FlattenLayer,
    MaxPoolLayer,
    ReLULayer,
    param_bytes,
)
from repro.errors import ShapeError


def numeric_grad(f, x, eps=1e-6):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        old = x[i]
        x[i] = old + eps
        fp = f()
        x[i] = old - eps
        fm = f()
        x[i] = old
        g[i] = (fp - fm) / (2 * eps)
    return g


def check_layer(layer, x, rng):
    """Full dx + dparam numeric check via a random linear objective."""
    dy = rng.normal(size=layer.forward(x).shape)

    def objective():
        return float((layer.forward(x) * dy).sum())

    dx, grads = layer.backward(x, dy)
    assert np.allclose(dx, numeric_grad(objective, x), atol=1e-6), layer.name
    for pname, g in grads.items():
        gnum = numeric_grad(objective, layer.params[pname])
        assert np.allclose(g, gnum, atol=1e-6), f"{layer.name}.{pname}"


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestGradients:
    def test_dense(self, rng):
        check_layer(DenseLayer(6, 4, rng), rng.normal(size=(5, 6)), rng)

    def test_relu(self, rng):
        check_layer(ReLULayer(), rng.normal(size=(5, 6)) + 0.1, rng)

    def test_conv(self, rng):
        check_layer(ConvLayer(2, 3, 3, rng, stride=1, padding=1), rng.normal(size=(2, 2, 5, 5)), rng)

    def test_conv_strided_no_bias(self, rng):
        check_layer(ConvLayer(2, 3, 3, rng, stride=2, padding=0, bias=False), rng.normal(size=(2, 2, 7, 7)), rng)

    def test_maxpool(self, rng):
        check_layer(MaxPoolLayer(2), rng.normal(size=(2, 3, 4, 4)), rng)

    def test_flatten(self, rng):
        check_layer(FlattenLayer(), rng.normal(size=(3, 2, 4, 4)), rng)

    def test_batchnorm_2d_input(self, rng):
        check_layer(BatchNormLayer(6), rng.normal(size=(8, 6)), rng)

    def test_batchnorm_4d_input(self, rng):
        check_layer(BatchNormLayer(3), rng.normal(size=(4, 3, 5, 5)), rng)


class TestPurity:
    """forward must be a pure function of (input, params) — this is what
    makes replay-based checkpointing exact."""

    def test_forward_deterministic(self, rng):
        for layer, shape in [
            (DenseLayer(6, 4, rng), (5, 6)),
            (ConvLayer(2, 3, 3, rng, padding=1), (2, 2, 5, 5)),
            (BatchNormLayer(6), (8, 6)),
            (MaxPoolLayer(2), (2, 3, 4, 4)),
        ]:
            x = rng.normal(size=shape)
            a = layer.forward(x)
            b = layer.forward(x.copy())
            assert np.array_equal(a, b), layer.name

    def test_forward_does_not_mutate_input(self, rng):
        layer = ReLULayer()
        x = rng.normal(size=(4, 4))
        x0 = x.copy()
        layer.forward(x)
        assert np.array_equal(x, x0)

    def test_backward_repeatable(self, rng):
        layer = ConvLayer(2, 4, 3, rng, padding=1)
        x = rng.normal(size=(2, 2, 6, 6))
        dy = rng.normal(size=layer.forward(x).shape)
        dx1, g1 = layer.backward(x, dy)
        dx2, g2 = layer.backward(x, dy)
        assert np.array_equal(dx1, dx2)
        assert all(np.array_equal(g1[k], g2[k]) for k in g1)


class TestShapesAndErrors:
    def test_dense_rejects_wrong_width(self, rng):
        with pytest.raises(ShapeError):
            DenseLayer(6, 4, rng).forward(rng.normal(size=(5, 7)))

    def test_conv_rejects_wrong_channels(self, rng):
        with pytest.raises(ShapeError):
            ConvLayer(2, 3, 3, rng).forward(rng.normal(size=(1, 5, 8, 8)))

    def test_batchnorm_rejects_3d(self, rng):
        with pytest.raises(ShapeError):
            BatchNormLayer(4).forward(rng.normal(size=(2, 4, 4)))

    def test_param_bytes(self, rng):
        layer = DenseLayer(6, 4, rng)
        assert param_bytes(layer) == (6 * 4 + 4) * 8  # float64

    def test_zero_grads_shapes(self, rng):
        layer = DenseLayer(6, 4, rng)
        zg = layer.zero_grads()
        assert set(zg) == {"W", "b"}
        assert all((zg[k] == 0).all() for k in zg)


class TestBatchNormSemantics:
    def test_normalizes_batch(self, rng):
        layer = BatchNormLayer(5)
        x = rng.normal(loc=3.0, scale=2.0, size=(64, 5))
        y = layer.forward(x)
        assert np.allclose(y.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(y.std(axis=0), 1.0, atol=1e-2)

    def test_affine_params_applied(self, rng):
        layer = BatchNormLayer(3)
        layer.params["gamma"][:] = 2.0
        layer.params["beta"][:] = 1.0
        x = rng.normal(size=(32, 3))
        y = layer.forward(x)
        assert np.allclose(y.mean(axis=0), 1.0, atol=1e-10)
