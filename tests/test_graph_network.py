"""Graph construction, topological sort, inference and summaries."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    Add,
    Conv2d,
    Graph,
    Identity,
    Linear,
    ReLU,
    Sequential,
    TensorSpec,
)


def diamond_graph() -> Graph:
    """input -> conv -> (a, b) -> add."""
    g = Graph("diamond")
    src = g.add_input("in", TensorSpec((4, 8, 8)))
    stem = g.add("stem", Conv2d(in_channels=4, out_channels=8, kernel_size=3, padding=1), [src])
    a = g.add("a", Conv2d(in_channels=8, out_channels=8, kernel_size=3, padding=1), [stem])
    b = g.add("b", Identity(), [stem])
    g.add("merge", Add(), [a, b])
    return g


class TestConstruction:
    def test_duplicate_names_rejected(self):
        g = Graph()
        g.add_input("in", TensorSpec((4,)))
        with pytest.raises(GraphError):
            g.add_input("in", TensorSpec((4,)))

    def test_unknown_input_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add("x", Identity(), ["missing"])

    def test_arity_checked_at_wiring(self):
        g = Graph()
        a = g.add_input("a", TensorSpec((4,)))
        with pytest.raises(GraphError):
            g.add("add", Add(), [a])  # Add needs two inputs

    def test_layer_name_defaults_to_node_name(self):
        g = Graph()
        g.add_input("in", TensorSpec((4,)))
        layer = Identity()
        g.add("mid", layer, ["in"])
        assert layer.name == "mid"


class TestTopology:
    def test_topological_order_respects_edges(self):
        g = diamond_graph()
        order = g.topological_order()
        assert order.index("stem") < order.index("a")
        assert order.index("stem") < order.index("b")
        assert order.index("a") < order.index("merge")

    def test_outputs_default_to_sinks(self):
        g = diamond_graph()
        assert g.outputs == ["merge"]

    def test_mark_output(self):
        g = diamond_graph()
        g.mark_output("a")
        assert g.outputs == ["a"]

    def test_mark_unknown_output(self):
        with pytest.raises(GraphError):
            diamond_graph().mark_output("nope")

    def test_consumers(self):
        g = diamond_graph()
        assert set(g.consumers("stem")) == {"a", "b"}

    def test_len_and_contains(self):
        g = diamond_graph()
        assert len(g) == 5
        assert "stem" in g and "zzz" not in g

    def test_node_lookup_error(self):
        with pytest.raises(GraphError):
            diamond_graph().node("zzz")


class TestInference:
    def test_infer_fills_outputs(self):
        g = diamond_graph()
        specs = g.infer()
        assert specs["merge"].shape == (8, 8, 8)
        assert all(n.output is not None for n in g.nodes)

    def test_activation_bytes_counts_all_outputs(self):
        g = diamond_graph()
        g.infer()
        total = sum(n.output.nbytes for n in g.nodes)
        assert g.activation_bytes_per_sample() == total

    def test_activation_bytes_can_skip_inplace(self):
        g = Graph()
        src = g.add_input("in", TensorSpec((4, 4, 4)))
        g.add("relu", ReLU(), [src])
        with_inplace = g.activation_bytes_per_sample(include_inplace=True)
        without = g.activation_bytes_per_sample(include_inplace=False)
        assert with_inplace - without == TensorSpec((4, 4, 4)).nbytes

    def test_trainable_totals(self):
        g = diamond_graph()
        expected = (8 * 4 * 9) + (8 * 8 * 9)  # two no-bias convs
        assert g.trainable_numel == expected
        assert g.trainable_bytes == expected * 4

    def test_flops_aggregate(self):
        g = diamond_graph()
        assert g.total_flops_per_sample() > 0

    def test_summary_mentions_every_node(self):
        g = diamond_graph()
        text = g.summary()
        for name in ("stem", "a", "b", "merge"):
            assert name in text


class TestSequential:
    def test_append_chains(self):
        net = Sequential(TensorSpec((8,)))
        net.append(Linear(in_features=8, out_features=4), "fc")
        assert net.tail == "fc"
        assert net.infer()["fc"].shape == (4,)

    def test_append_autonames(self):
        net = Sequential(TensorSpec((8,)))
        n1 = net.append(Linear(in_features=8, out_features=8))
        n2 = net.append(Linear(in_features=8, out_features=8))
        assert n1 != n2

    def test_append_rejects_multi_input(self):
        net = Sequential(TensorSpec((8,)))
        with pytest.raises(GraphError):
            net.append(Add())


def test_topological_order_returns_fresh_list():
    """Regression: mutating the returned order must not corrupt the
    graph's cached order (it previously aliased the internal list)."""
    g = diamond_graph()
    order = g.topological_order()
    order.reverse()
    assert g.topological_order() != order or len(order) <= 1
    g.infer()  # would KeyError on a corrupted cache


def test_cycle_detection():
    """A hand-wired cycle is caught by the topological sort."""
    g = Graph("cyclic")
    g.add_input("in", TensorSpec((4,)))
    g.add("a", Identity(), ["in"])
    # Force a cycle by mutating internals (the public API cannot build one).
    g._nodes["a"].inputs = ("b",)
    g._nodes["b"] = type(g._nodes["a"])(name="b", layer=Identity(), inputs=("a",))
    g._order = None
    with pytest.raises(GraphError):
        g.topological_order()
