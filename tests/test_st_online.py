"""Streaming in-situ adaptation: the online student improves mid-run."""

import numpy as np
import pytest

from repro.studentteacher import (
    OnlineAdapter,
    OnlineConfig,
    StudentConfig,
    TeacherModel,
    ViewpointWorld,
)


@pytest.fixture(scope="module")
def setting():
    rng = np.random.default_rng(0)
    world = ViewpointWorld(num_classes=5, feature_dim=8, rng=rng)
    x_tr, y_tr = world.sample_frontal(200)
    teacher = TeacherModel.fit(x_tr, y_tr)
    episode = world.generate_episode(
        n_subjects=100, frames_per_crossing=20, camera_skew_deg=60.0
    )
    angles = np.linspace(-60, 60, 23)
    x_ev, y_ev, _ = world.sample_at_angles(80, angles)
    return world, teacher, episode, x_ev, y_ev


def run_adapter(setting, cfg=None):
    world, teacher, episode, x_ev, y_ev = setting
    adapter = OnlineAdapter(teacher, 8, 5, cfg or OnlineConfig(), seed=1)
    for frame in episode.frames:
        adapter.process_frame(frame)
    adapter.finalize()
    return adapter, x_ev, y_ev


class TestOnlineAdapter:
    def test_final_accuracy_beats_teacher(self, setting):
        world, teacher, episode, x_ev, y_ev = setting
        adapter, x_ev, y_ev = run_adapter(setting)
        assert adapter.accuracy(x_ev, y_ev) > teacher.accuracy(x_ev, y_ev) + 0.1

    def test_accuracy_improves_over_stream(self, setting):
        world, teacher, episode, x_ev, y_ev = setting
        adapter = OnlineAdapter(teacher, 8, 5, OnlineConfig(), seed=1)
        mid = len(episode.frames) // 4
        for frame in episode.frames[:mid]:
            adapter.process_frame(frame)
        early = adapter.accuracy(x_ev, y_ev)
        for frame in episode.frames[mid:]:
            adapter.process_frame(frame)
        adapter.finalize()
        late = adapter.accuracy(x_ev, y_ev)
        assert late > early

    def test_buffer_grows_and_stays_pure(self, setting):
        adapter, _, _ = run_adapter(setting)
        assert len(adapter.buffer) > 500
        assert adapter.buffer_purity > 0.9

    def test_snapshots_monotone(self, setting):
        adapter, _, _ = run_adapter(setting)
        assert adapter.snapshots
        sizes = [s.buffer_size for s in adapter.snapshots]
        assert sizes == sorted(sizes)
        updates = [s.updates for s in adapter.snapshots]
        assert updates == list(range(1, len(updates) + 1))

    def test_buffer_bounded(self, setting):
        cfg = OnlineConfig(buffer_max=300)
        adapter, _, _ = run_adapter(setting, cfg)
        assert len(adapter.buffer) <= 300

    def test_strict_confidence_harvests_less(self, setting):
        lax, _, _ = run_adapter(setting, OnlineConfig(confidence_threshold=0.5))
        strict, _, _ = run_adapter(setting, OnlineConfig(confidence_threshold=0.999))
        assert len(strict.buffer) <= len(lax.buffer)

    def test_finalize_flushes_open_tracks(self, setting):
        world, teacher, episode, _, _ = setting
        adapter = OnlineAdapter(teacher, 8, 5, OnlineConfig(), seed=1)
        for frame in episode.frames:
            adapter.process_frame(frame)
        before = len(adapter.buffer)
        adapter.finalize()
        assert len(adapter.buffer) >= before

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OnlineConfig(update_every=0)
        with pytest.raises(ValueError):
            OnlineConfig(buffer_max=0)
