"""Per-layer memory profiling."""

import pytest

from repro.memory import memory_profile
from repro.zoo import build_resnet, simple_cnn


@pytest.fixture(scope="module")
def profile():
    return memory_profile(build_resnet(18, image_size=224))


class TestProfile:
    def test_totals_match_graph(self, profile):
        g = build_resnet(18, image_size=224)
        assert profile.total_act_bytes == g.activation_bytes_per_sample()
        assert profile.total_param_bytes == g.trainable_bytes

    def test_top_activations_are_early_layers(self, profile):
        """High-resolution stem/stage-1 nodes hold the biggest tensors."""
        top = profile.top_activations(5)
        assert all(
            p.name.startswith(("stem", "layer1", "input")) for p in top
        ), [p.name for p in top]

    def test_top_parameters_are_late_layers(self, profile):
        top = profile.top_parameters(5)
        assert all(p.name.startswith(("layer4", "layer3", "head")) for p in top), [
            p.name for p in top
        ]

    def test_activation_share_partition(self, profile):
        shares = [
            profile.activation_share(p)
            for p in ("input", "stem", "layer1", "layer2", "layer3", "layer4", "head")
        ]
        assert sum(shares) == pytest.approx(1.0)

    def test_share_decreases_down_the_net(self, profile):
        s1 = profile.activation_share("layer1")
        s4 = profile.activation_share("layer4")
        assert s1 > s4

    def test_top_k_bounded(self, profile):
        assert len(profile.top_activations(3)) == 3

    def test_render(self, profile):
        text = profile.render(5)
        assert "activation holders" in text
        assert "parameter holders" in text

    def test_small_model(self):
        prof = memory_profile(simple_cnn(image_size=16))
        assert prof.total_act_bytes > 0
        assert prof.activation_share("conv1") > 0
