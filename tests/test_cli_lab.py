"""Registry-generated CLI commands: list/show/run and the cached all."""

import json

import pytest

from repro import lab
from repro.cli import main

import repro.experiments  # noqa: F401


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    assert code == 0
    return out


def n_default_units():
    return len(lab.default_units())


def n_cold_misses():
    """Payload computations a cold ``repro all`` performs.

    Every default unit plus any dependency payload (summary's deps) not
    already covered by a default unit's (spec, params) key.
    """
    covered = {
        lab.unit_key(lab.get_spec(u.spec), u.params) for u in lab.default_units()
    }
    extra = 0
    for dep_name, dep_params in lab.get_spec("summary").deps:
        dep_spec = lab.get_spec(dep_name)
        if lab.unit_key(dep_spec, dep_spec.validate_params(dep_params)) not in covered:
            extra += 1
    return len(lab.default_units()) + extra


class TestListShow:
    def test_list_names_every_spec(self, capsys):
        out = run(capsys, "list")
        for name in lab.available_experiments():
            assert name in out
        assert f"{len(lab.available_experiments())} registered" in out

    def test_show_figure1(self, capsys):
        out = run(capsys, "show", "figure1")
        assert "panel" in out and "source" in out
        assert "ascii" in out and "csv" in out
        assert "figure1_b.txt" in out

    def test_show_summary_lists_deps(self, capsys):
        out = run(capsys, "show", "summary")
        for dep, _ in lab.get_spec("summary").deps:
            assert dep in out

    def test_show_unknown_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["show", "nope"])


class TestRun:
    def test_run_equals_alias(self, capsys):
        alias = run(capsys, "figure1", "--panel", "d", "--csv")
        generic = run(capsys, "run", "figure1", "--param", "panel=d",
                      "--format", "csv")
        assert generic == alias

    def test_run_table_alias_equivalence(self, capsys):
        assert run(capsys, "run", "table1") == run(capsys, "table1")

    def test_run_json_param(self, capsys):
        out = run(capsys, "run", "section5", "--param", "lengths=[18, 34]",
                  "--format", "json")
        assert json.loads(out)["lengths"] == [18, 34]

    def test_run_bad_param_syntax_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "table1", "--param", "source"])

    def test_run_unknown_format_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "sensitivity", "--format", "nope"])

    def test_run_with_outdir_caches(self, capsys, tmp_path):
        out1 = run(capsys, "run", "sensitivity", "--outdir", str(tmp_path))
        out2 = run(capsys, "run", "sensitivity", "--outdir", str(tmp_path))
        assert "0 hits / 1 misses" in out1
        assert "1 hits / 0 misses" in out2
        assert out1.splitlines()[:-1] == out2.splitlines()[:-1]


class TestAll:
    def test_second_run_is_all_hits(self, capsys, tmp_path):
        cold = run(capsys, "all", "--outdir", str(tmp_path))
        warm = run(capsys, "all", "--outdir", str(tmp_path), "--manifest-check")
        assert "misses" in cold and " 0 misses" in warm
        assert "0 hits" in cold.splitlines()[-1]
        assert f"(0 computed, jobs={lab.default_jobs()})" in warm.splitlines()[-1]
        assert sum(1 for ln in cold.splitlines() if ln.startswith("wrote ")) >= 20
        assert sum(1 for ln in warm.splitlines() if ln.startswith("cached ")) >= 20
        assert not any(ln.startswith("wrote ") for ln in warm.splitlines())
        assert f"manifests: {n_default_units()} valid" in warm

    def test_force_recomputes(self, capsys, tmp_path):
        run(capsys, "all", "--outdir", str(tmp_path), "--jobs", "1")
        forced = run(capsys, "all", "--outdir", str(tmp_path), "--jobs", "1",
                     "--force")
        assert f"0 hits / {n_cold_misses()} misses" in forced.splitlines()[-1]

    def test_jobs_flag_reported(self, capsys, tmp_path):
        out = run(capsys, "all", "--outdir", str(tmp_path), "--jobs", "2")
        assert "jobs=2)" in out.splitlines()[-1]

    def test_artifacts_match_alias_output(self, capsys, tmp_path):
        run(capsys, "all", "--outdir", str(tmp_path))
        alias = run(capsys, "table1", "--source", "paper")
        assert (tmp_path / "table1_paper.txt").read_text() == alias
