"""Cross-process sharing of compiled programs through the artifact store.

A cold ``run_units`` compiles programs inside the workers and persists
them under ``<outdir>/programs/``; a forced warm rerun (fresh worker
caches) must hydrate from that store instead of recompiling, and the
hits must surface in both the obs counters and the summary line.
"""

import re

import pytest

from repro import lab, obs
from repro.checkpointing.strategies import (
    PROGRAM_STORE_HITS,
    PROGRAM_STORE_WRITES,
)

import repro.experiments  # noqa: F401

SUMMARY_RE = re.compile(
    r"lab cache: (\d+) hits / (\d+) misses \((\d+) computed, jobs=(\d+)\); "
    r"programs: (\d+) shared / (\d+) compiled"
)


def _units():
    # Two distinct units so the process-pool path engages (a single
    # pending unit is computed inline in the parent).
    return [
        lab.Unit("ablation", {"lengths": [21], "slot_budgets": [3]}),
        lab.Unit("ablation", {"lengths": [34], "slot_budgets": [3]}),
    ]


@pytest.mark.usefixtures("fresh_schedule_cache")
class TestSerialSharing:
    def test_cold_run_persists_programs(self, tmp_path):
        store = lab.ArtifactStore(tmp_path)
        report = lab.run_units(_units(), store, jobs=1)
        assert report.programs_compiled >= 1
        assert report.program_hits >= 0
        assert list((tmp_path / "programs").glob("*.json"))
        m = SUMMARY_RE.fullmatch(report.summary_line())
        assert m and int(m.group(6)) == report.programs_compiled


@pytest.mark.usefixtures("fresh_schedule_cache")
class TestPoolSharing:
    def test_second_worker_run_hits_shared_store(self, tmp_path):
        store = lab.ArtifactStore(tmp_path)
        metrics = obs.get_metrics()

        cold = lab.run_units(_units(), store, jobs=2)
        assert cold.programs_compiled >= 1
        assert metrics.counter(PROGRAM_STORE_WRITES).value >= 1
        persisted = list((tmp_path / "programs").glob("*.json"))
        assert len(persisted) >= cold.programs_compiled

        # Forced rerun: new workers start with empty in-memory caches, so
        # every program they need must come from the shared store.
        h0 = metrics.counter(PROGRAM_STORE_HITS).value
        warm = lab.run_units(_units(), store, jobs=2, force=True)
        assert warm.program_hits >= 1
        assert warm.programs_compiled == 0
        assert metrics.counter(PROGRAM_STORE_HITS).value - h0 >= 1

        m = SUMMARY_RE.fullmatch(warm.summary_line())
        assert m is not None
        assert int(m.group(5)) == warm.program_hits >= 1
        assert int(m.group(6)) == 0

    def test_no_store_means_no_persistence(self, tmp_path):
        report = lab.run_units(_units(), None, jobs=2)
        assert report.programs_compiled >= 1
        assert not (tmp_path / "programs").exists()
