"""Durable snapshots: exact round-trips, typed failures, policies."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import (
    Adam,
    DenseLayer,
    FitCursor,
    Momentum,
    ReLULayer,
    SequentialNet,
    Trainer,
    TrainerConfig,
    gaussian_blobs,
)
from repro.edge.storage import EMMC, SD_CARD
from repro.errors import SnapshotError
from repro.resilience import (
    FixedIntervalPolicy,
    YoungDalyPolicy,
    capture_snapshot,
    read_snapshot,
    restore_snapshot,
    snapshot_from_json,
    snapshot_nbytes,
    snapshot_to_json,
    write_snapshot,
    young_daly_interval,
)
from repro.resilience.snapshot import _decode_array, _encode_array


def make_net(seed, width=10):
    rng = np.random.default_rng(seed)
    return SequentialNet(
        [
            DenseLayer(6, width, rng, name="fc0"),
            ReLULayer(name="r0"),
            DenseLayer(width, 3, rng, name="head"),
        ]
    )


def make_trainer(seed=7, opt="momentum", epochs=3):
    net = make_net(seed)
    optimizer = (
        Adam(net.layers, lr=0.01) if opt == "adam" else Momentum(net.layers, lr=0.02)
    )
    return Trainer(net, optimizer, TrainerConfig(epochs=epochs, shuffle_seed=seed))


@pytest.fixture
def data():
    return gaussian_blobs(30, 3, 6, np.random.default_rng(2), separation=6.0)


class TestArrayCodec:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(allow_nan=False, width=32), min_size=0, max_size=30),
        st.sampled_from(["float64", "float32"]),
    )
    def test_round_trip_exact(self, values, dtype):
        a = np.array(values, dtype=np.float64).astype(dtype)
        b = _decode_array(_encode_array(a), "t")
        assert b.dtype == a.dtype and b.shape == a.shape
        assert np.array_equal(a, b)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(-(2**62), 2**62), min_size=0, max_size=20))
    def test_round_trip_exact_int(self, values):
        a = np.array(values, dtype=np.int64)
        assert np.array_equal(_decode_array(_encode_array(a), "t"), a)

    def test_round_trip_preserves_2d_shape(self):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert np.array_equal(_decode_array(_encode_array(a), "t"), a)

    def test_truncated_payload_raises(self):
        enc = _encode_array(np.ones(8))
        enc["shape"] = [16]  # claims more elements than the payload holds
        with pytest.raises(SnapshotError, match="truncated"):
            _decode_array(enc, "t")

    def test_garbage_base64_raises(self):
        enc = _encode_array(np.ones(4))
        enc["data"] = "!!!not-base64!!!"
        with pytest.raises(SnapshotError, match="undecodable"):
            _decode_array(enc, "t")

    def test_missing_field_raises(self):
        with pytest.raises(SnapshotError, match="malformed"):
            _decode_array({"dtype": "float64"}, "t")


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("opt", ["momentum", "adam"])
    def test_json_round_trip_bit_exact(self, opt, data):
        t = make_trainer(opt=opt)
        t.fit(data)
        snap = capture_snapshot(t, FitCursor(epoch=3, step=t._step))
        back = snapshot_from_json(snapshot_to_json(snap))
        assert back.cursor == snap.cursor
        assert back.shuffle_seed == snap.shuffle_seed
        assert back.optimizer_type == snap.optimizer_type
        assert set(back.params) == set(snap.params)
        for k in snap.params:
            assert np.array_equal(back.params[k], snap.params[k])
        assert back.history == snap.history

    def test_restore_then_continue_identical(self, data):
        """serialize -> deserialize -> continue reproduces the unbroken run."""
        ref = make_trainer(epochs=6)
        ref.fit(data)

        half = make_trainer(epochs=3)
        half.fit(data)
        snap = snapshot_from_json(
            snapshot_to_json(capture_snapshot(half, FitCursor(epoch=3, step=half._step)))
        )
        resumed = make_trainer(epochs=6)  # same seeds, fresh weights
        cursor = restore_snapshot(resumed, snap)
        resumed.fit(data, cursor=cursor)
        assert [r.mean_loss for r in resumed.history] == [
            r.mean_loss for r in ref.history
        ]
        for la, lb in zip(ref.net.layers, resumed.net.layers):
            for p in la.params:
                assert np.array_equal(la.params[p], lb.params[p])

    def test_file_round_trip_and_atomicity(self, tmp_path, data):
        t = make_trainer()
        t.fit(data)
        snap = capture_snapshot(t, FitCursor(epoch=3, step=t._step))
        path = tmp_path / "snap.json"
        n = write_snapshot(path, snap)
        assert n == path.stat().st_size
        assert not list(tmp_path.glob("*.tmp"))  # rename happened
        back = read_snapshot(path)
        assert back.cursor == snap.cursor

    def test_missing_file_typed_error(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            read_snapshot(tmp_path / "nope.json")


class TestCorruption:
    def _snapshot_text(self, data):
        t = make_trainer()
        t.fit(data)
        return snapshot_to_json(capture_snapshot(t, FitCursor(epoch=3, step=t._step)))

    def test_flipped_payload_byte_fails_crc(self, data):
        payload = json.loads(self._snapshot_text(data))
        blob = payload["params"][0][2]["data"]
        payload["params"][0][2]["data"] = blob[:10] + ("A" if blob[10] != "A" else "B") + blob[11:]
        with pytest.raises(SnapshotError, match="CRC"):
            snapshot_from_json(json.dumps(payload))

    def test_truncated_file_raises(self, data):
        text = self._snapshot_text(data)
        with pytest.raises(SnapshotError):
            snapshot_from_json(text[: len(text) // 2])

    def test_wrong_version_raises(self, data):
        payload = json.loads(self._snapshot_text(data))
        payload["version"] = 999
        with pytest.raises(SnapshotError, match="version"):
            snapshot_from_json(json.dumps(payload))

    @pytest.mark.parametrize(
        "key", ["cursor", "shuffle_seed", "params", "optimizer", "history", "crc32"]
    )
    def test_missing_section_raises(self, data, key):
        payload = json.loads(self._snapshot_text(data))
        del payload[key]
        with pytest.raises(SnapshotError, match=key):
            snapshot_from_json(json.dumps(payload))

    def test_not_json_raises(self):
        with pytest.raises(SnapshotError, match="invalid snapshot JSON"):
            snapshot_from_json("}{")


class TestRestoreValidation:
    def test_seed_mismatch(self, data):
        t = make_trainer()
        t.fit(data)
        snap = capture_snapshot(t, FitCursor(step=t._step))
        other = make_net(7)
        wrong = Trainer(
            other, Momentum(other.layers, lr=0.02), TrainerConfig(shuffle_seed=99)
        )
        with pytest.raises(SnapshotError, match="shuffle_seed"):
            restore_snapshot(wrong, snap)

    def test_optimizer_mismatch(self, data):
        t = make_trainer(opt="adam")
        t.fit(data)
        snap = capture_snapshot(t, FitCursor(step=t._step))
        with pytest.raises(SnapshotError, match="optimizer"):
            restore_snapshot(make_trainer(opt="momentum"), snap)

    def test_architecture_mismatch(self, data):
        t = make_trainer()
        t.fit(data)
        snap = capture_snapshot(t, FitCursor(step=t._step))
        wider = make_net(7, width=16)
        wrong = Trainer(
            wider, Momentum(wider.layers, lr=0.02), TrainerConfig(shuffle_seed=7)
        )
        with pytest.raises(SnapshotError, match="shape"):
            restore_snapshot(wrong, snap)


class TestPolicies:
    def test_young_daly_formula(self):
        assert young_daly_interval(7200.0, 4.0) == pytest.approx(240.0)
        with pytest.raises(ValueError):
            young_daly_interval(0.0, 4.0)

    def test_fixed_interval_due(self):
        p = FixedIntervalPolicy(10)
        assert not p.due(9, 0)
        assert p.due(10, 0)
        assert not p.due(15, 10)

    def test_young_daly_policy_prices_storage(self):
        nbytes = 50_000_000
        p_sd = YoungDalyPolicy(12 * 3600.0, 1.0, snapshot_bytes=nbytes, storage=SD_CARD)
        p_emmc = YoungDalyPolicy(12 * 3600.0, 1.0, snapshot_bytes=nbytes, storage=EMMC)
        assert p_sd.snapshot_seconds == pytest.approx(SD_CARD.write_seconds(nbytes))
        # faster flash -> cheaper delta -> shorter optimal interval
        assert p_emmc.interval_steps < p_sd.interval_steps

    def test_young_daly_policy_steps(self):
        p = YoungDalyPolicy(7200.0, step_seconds=2.0, snapshot_seconds=4.0)
        assert p.tau_star_seconds == pytest.approx(240.0)
        assert p.interval_steps == 120
        with pytest.raises(ValueError):
            YoungDalyPolicy(7200.0, 1.0)  # neither bytes nor seconds

    def test_snapshot_nbytes_counts_optimizer(self, data):
        mom = make_trainer(opt="momentum")
        adam = make_trainer(opt="adam")
        assert snapshot_nbytes(adam) > snapshot_nbytes(mom)
        assert snapshot_nbytes(mom) == mom.net.param_bytes + mom.optimizer.state_bytes
