"""Backend-specific behavior: occupied-slot regression, message parity,
tiered-storage pricing.

Satellites of the engine refactor: the SNAPSHOT-into-occupied-slot
invariant must hold on *every* backend through the public wrappers, the
simulator and executor must raise the *same* error text for the same
broken schedule, and a ``disk_revolve`` schedule must execute with
measured per-tier transfer seconds.
"""

import numpy as np
import pytest

from repro.checkpointing import (
    ChainSpec,
    Schedule,
    adjoint,
    advance,
    free,
    restore,
    simulate,
    snapshot,
)
from repro.checkpointing.multilevel import (
    DISK_SLOT_BASE,
    disk_revolve_cost,
    disk_revolve_schedule,
)
from repro.autodiff import DenseLayer, SequentialNet, run_schedule
from repro.edge.storage import EMMC, SD_CARD, StorageProfile
from repro.engine import SimBackend, TieredBackend, execute
from repro.errors import ExecutionError


def _sched(l, slots, *actions):
    return Schedule(strategy="test", length=l, slots=slots, actions=tuple(actions))


def _dense_net(l, rng, dim=4, classes=3):
    layers = [DenseLayer(dim, dim, rng, name=f"d{i}") for i in range(l - 1)]
    layers.append(DenseLayer(dim, classes, rng, name="head"))
    return SequentialNet(layers, name=f"net{l}")


def _batch(rng, dim=4, classes=3, n=6):
    x = rng.standard_normal((n, dim))
    labels = rng.integers(0, classes, size=n)
    return x, labels


# A SNAPSHOT into a still-occupied slot silently discarded the old
# checkpoint before the engine refactor; now every backend rejects it.
OCCUPIED = _sched(3, 2, snapshot(0), advance(1), snapshot(0))


class TestOccupiedSlotRegression:
    def test_sim_backend_rejects(self):
        with pytest.raises(ExecutionError, match="occupied slot 0"):
            simulate(OCCUPIED)

    def test_tensor_backend_rejects(self, rng):
        net = _dense_net(3, rng)
        x, labels = _batch(rng)
        with pytest.raises(ExecutionError, match="occupied slot 0"):
            run_schedule(net, OCCUPIED, x, labels)

    def test_tiered_backend_rejects(self):
        with pytest.raises(ExecutionError, match="occupied slot 0"):
            execute(OCCUPIED, TieredBackend(ChainSpec.homogeneous(3)))


BROKEN = {
    "advance_backwards": _sched(3, 1, advance(2), advance(1)),
    "advance_past_end": _sched(3, 1, advance(4)),
    "snapshot_over_budget": _sched(3, 2, snapshot(2)),
    "snapshot_occupied": OCCUPIED,
    "restore_empty": _sched(3, 2, restore(1)),
    "free_empty": _sched(3, 2, free(0)),
    "adjoint_out_of_order": _sched(2, 1, snapshot(0), advance(1), adjoint(1)),
    "adjoint_wrong_cursor": _sched(2, 1, snapshot(0), adjoint(2)),
    "unfinished_backwards": _sched(2, 1, snapshot(0), advance(1), adjoint(2)),
}


class TestMessageParity:
    """Simulator and executor now share one VM, hence one error text."""

    @pytest.mark.parametrize("case", sorted(BROKEN))
    def test_same_wording_both_paths(self, case, rng):
        sch = BROKEN[case]
        with pytest.raises(ExecutionError) as sim_exc:
            simulate(sch)
        net = _dense_net(sch.length, rng)
        x, labels = _batch(rng)
        with pytest.raises(ExecutionError) as ten_exc:
            run_schedule(net, sch, x, labels)
        assert str(sim_exc.value) == str(ten_exc.value)

    def test_length_mismatch_same_wording(self, rng):
        sch = _sched(5, 2, advance(5))
        with pytest.raises(ExecutionError) as sim_exc:
            simulate(sch, ChainSpec.homogeneous(7))
        net = _dense_net(7, rng)
        x, labels = _batch(rng)
        with pytest.raises(ExecutionError) as ten_exc:
            run_schedule(net, sch, x, labels)
        assert str(sim_exc.value) == str(ten_exc.value)
        assert "schedule length 5 != chain length 7" in str(sim_exc.value)


class TestStorageProfileReads:
    def test_read_path_mirrors_write_by_default(self):
        p = StorageProfile("sym", write_bytes_per_s=1000.0, write_latency_s=0.5)
        assert p.read_seconds(2000) == p.write_seconds(2000) == 0.5 + 2.0

    def test_asymmetric_read_path(self):
        p = StorageProfile(
            "asym",
            write_bytes_per_s=1000.0,
            write_latency_s=0.5,
            read_bytes_per_s=2000.0,
            read_latency_s=0.1,
        )
        assert p.write_seconds(2000) == 0.5 + 2.0
        assert p.read_seconds(2000) == 0.1 + 1.0

    def test_bad_read_fields_rejected(self):
        with pytest.raises(ValueError):
            StorageProfile("bad", read_bytes_per_s=0.0)
        with pytest.raises(ValueError):
            StorageProfile("bad", read_latency_s=-1.0)


class TestTieredExecution:
    def test_disk_revolve_executes_with_priced_transfers(self):
        l, c_m = 40, 2
        sch = disk_revolve_schedule(l, c_m)
        spec = ChainSpec.homogeneous(l, act_bytes=256 * 1024)
        run = execute(sch, TieredBackend(spec, disk=SD_CARD))

        disk = run.tier("disk")
        mem = run.tier("memory")
        assert disk.writes > 0 and disk.reads > 0
        per_write = SD_CARD.write_seconds(256 * 1024)
        per_read = SD_CARD.read_seconds(256 * 1024)
        assert disk.write_seconds == pytest.approx(disk.writes * per_write)
        assert disk.read_seconds == pytest.approx(disk.reads * per_read)
        # RAM tier carries no profile here, so it moves bytes for free.
        assert mem.write_seconds == 0.0 and mem.read_seconds == 0.0
        assert run.transfer_seconds == pytest.approx(
            disk.transfer_seconds + mem.transfer_seconds
        )
        assert run.transfer_seconds > 0.0
        # Counting (not pricing) still matches the two-level DP, which
        # prices advances plus unit-cost disk transfers.
        counting = execute(sch, TieredBackend(spec))
        d = counting.tier("disk")
        assert counting.forward_cost + d.writes + d.reads == disk_revolve_cost(l, c_m)

    def test_slot_to_tier_mapping(self):
        sch = _sched(
            1,
            DISK_SLOT_BASE + 1,
            snapshot(0),
            snapshot(DISK_SLOT_BASE),
            restore(DISK_SLOT_BASE),
            free(DISK_SLOT_BASE),
            restore(0),
            adjoint(1),
        )
        run = execute(sch, TieredBackend(ChainSpec.homogeneous(1, act_bytes=8)))
        assert run.tier("memory").writes == 1
        assert run.tier("memory").reads == 1
        assert run.tier("disk").writes == 1
        assert run.tier("disk").reads == 1
        assert run.tier("memory").peak_bytes == 8
        assert run.tier("disk").peak_bytes == 8

    def test_faster_disk_costs_less(self):
        sch = disk_revolve_schedule(30, 2)
        spec = ChainSpec.homogeneous(30, act_bytes=1024 * 1024)
        slow = execute(sch, TieredBackend(spec, disk=SD_CARD))
        fast = execute(sch, TieredBackend(spec, disk=EMMC))
        assert fast.transfer_seconds < slow.transfer_seconds

    def test_tier_stats_reach_run_stats(self):
        sch = disk_revolve_schedule(20, 2)
        run = execute(sch, TieredBackend(ChainSpec.homogeneous(20), disk=SD_CARD))
        assert {t.name for t in run.tiers} == {"memory", "disk"}
        with pytest.raises(KeyError):
            run.tier("tape")


class TestTensorBackendResults:
    def test_matches_store_all_reference(self, rng):
        from repro.checkpointing import revolve_schedule

        l = 6
        net = _dense_net(l, rng)
        x, labels = _batch(rng)
        ref_loss, ref_grads, _ = net.train_step(x, labels)
        res = run_schedule(net, revolve_schedule(l, 2), x, labels)
        assert res.loss == ref_loss
        assert set(res.grads) == set(ref_grads)
        for k in ref_grads:
            np.testing.assert_array_equal(res.grads[k], ref_grads[k])
