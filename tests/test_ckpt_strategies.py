"""Strategy registry: resolution, simulator parity, the schedule cache,
and the repetition-number search rewrite."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpointing import (
    available_strategies,
    beta,
    compare_strategies,
    extra_forwards,
    get_strategy,
    repetition_number,
    resolve_strategy_name,
    rho_for_slots,
    rho_from_extra,
    schedule_cache_info,
    simulate,
    sqrt_memory_slots,
    uniform_extra_forwards_fused,
    uniform_rho,
    validate,
)
from repro.errors import PlanningError

# Derived from the registry so new families don't churn this file; the
# seed quartet is pinned explicitly below, everything else rides along.
FAMILIES = available_strategies()


class TestRegistry:
    def test_families_are_the_registry(self):
        assert set(FAMILIES) == set(available_strategies())
        assert len(FAMILIES) >= 9  # the PR-9 floor: families only accrete

    def test_presentation_order_keeps_seed_quartet_first(self):
        assert available_strategies()[:4] == ("revolve", "uniform", "sqrt", "store_all")

    def test_get_strategy_resolves_each_name(self):
        for name in FAMILIES:
            assert get_strategy(name).name == name

    def test_legacy_aliases(self):
        assert get_strategy("hetero_dp").name == "hetero"
        assert get_strategy("budget_dp").name == "budget"
        assert get_strategy("joint").name == "joint_time"

    def test_unknown_name_lists_available(self):
        with pytest.raises(PlanningError, match="revolve"):
            get_strategy("does_not_exist")

    def test_resolve_parameterized_labels(self):
        assert resolve_strategy_name("uniform(s=4)") == "uniform"
        assert resolve_strategy_name("disk_revolve(c_m=3)") == "disk_revolve"
        assert resolve_strategy_name("hetero_dp") == "hetero"
        with pytest.raises(PlanningError):
            resolve_strategy_name("mystery(s=2)")


class TestSimulatorParity:
    """Every strategy's predictions must match its executed schedule."""

    def assert_parity(self, name: str, l: int, c: int) -> None:
        strat = get_strategy(name)
        if not strat.feasible(l, c):
            return
        schedule = strat.build_schedule(l, c)
        assert validate(schedule), (name, l, c)
        stats = simulate(schedule)
        assert stats.extra_forward_steps() == strat.extra_forwards(l, c), (name, l, c)
        assert stats.peak_slots == strat.peak_slots(l, c), (name, l, c)

    @given(l=st.integers(1, 40), c=st.integers(1, 10))
    @settings(max_examples=60, deadline=None)
    def test_closed_form_families(self, l, c):
        for name in ("revolve", "uniform", "sqrt", "store_all"):
            self.assert_parity(name, l, c)

    @pytest.mark.parametrize("l", (1, 2, 3, 5, 8, 13, 21))
    @pytest.mark.parametrize("c", (1, 2, 3, 5, 8))
    def test_dp_and_tiered_families(self, l, c):
        # Every registered family beyond the closed-form quartet,
        # including any registered after this test was written.
        for name in FAMILIES:
            if name in ("revolve", "uniform", "sqrt", "store_all"):
                continue
            self.assert_parity(name, l, c)

    def test_hetero_budget_match_revolve_closed_form(self):
        """On homogeneous chains the exact DPs equal Revolve's optimum."""
        for l, c in ((5, 2), (13, 3), (21, 4), (34, 5)):
            assert get_strategy("hetero").extra_forwards(l, c) == extra_forwards(l, c)
            assert get_strategy("budget").extra_forwards(l, c) == extra_forwards(l, c)

    def test_disk_revolve_never_recomputes_more_than_revolve(self):
        """The second tier can only reduce pure recomputation."""
        for l, c in ((21, 2), (34, 3), (152, 5)):
            disk = get_strategy("disk_revolve").extra_forwards(l, c)
            assert disk <= extra_forwards(l, c)


class TestRhoHelpers:
    def test_rho_from_extra_formula(self):
        assert rho_from_extra(50, 100) == pytest.approx(1.0 + 100 / (50 * 2))
        assert rho_from_extra(50, 100, bwd_ratio=2.0) == pytest.approx(1.0 + 100 / 150)

    def test_rho_from_extra_rejects_negative_ratio(self):
        with pytest.raises(PlanningError):
            rho_from_extra(10, 5, bwd_ratio=-0.5)

    def test_uniform_rho_is_the_deduplicated_formula(self):
        for l, s in ((18, 3), (50, 7), (152, 12)):
            expected = 1.0 + uniform_extra_forwards_fused(l, s) / (l * 2.0)
            assert uniform_rho(l, s) == expected

    def test_revolve_strategy_rho_equals_planner(self):
        for l, c in ((18, 3), (50, 5), (152, 8)):
            assert get_strategy("revolve").rho(l, c) == rho_for_slots(l, c)


class TestCompareViaRegistry:
    def test_default_covers_every_registered_strategy(self):
        out = compare_strategies(34, 5)
        assert tuple(out) == available_strategies()

    def test_seed_values_bit_identical(self):
        """The four seed families reproduce the pre-registry arithmetic."""
        from repro.checkpointing import best_segments, sqrt_segments

        for l in (18, 50, 152):
            for c in (3, 8, 21, 34):
                out = compare_strategies(l, c)
                assert out["revolve"] == 1.0 + extra_forwards(l, c) / (2 * l)
                try:
                    s = best_segments(l, slot_budget=c)
                    assert out["uniform"] == 1.0 + uniform_extra_forwards_fused(l, s) / (2 * l)
                except PlanningError:
                    assert math.isinf(out["uniform"])
                if sqrt_memory_slots(l) <= c:
                    s = sqrt_segments(l)
                    assert out["sqrt"] == 1.0 + uniform_extra_forwards_fused(l, s) / (2 * l)
                else:
                    assert math.isinf(out["sqrt"])
                assert out["store_all"] == (1.0 if c >= max(1, l - 1) else math.inf)

    def test_restriction(self):
        out = compare_strategies(50, 8, strategies=("revolve", "sqrt"))
        assert tuple(out) == ("revolve", "sqrt")

    def test_unknown_restriction_raises(self):
        with pytest.raises(PlanningError):
            compare_strategies(50, 8, strategies=("revolve", "nope"))


@pytest.mark.usefixtures("fresh_schedule_cache")
class TestScheduleCache:
    def test_hit_miss_accounting_and_identity(self):
        base = schedule_cache_info()
        assert (base.hits, base.misses, base.schedules, base.stats) == (0, 0, 0, 0)
        strat = get_strategy("revolve")
        first = strat.schedule(34, 5)
        after_miss = schedule_cache_info()
        assert after_miss.misses == 1 and after_miss.schedules == 1
        second = strat.schedule(34, 5)
        assert second is first  # memoized object, not a rebuild
        assert schedule_cache_info().hits == 1

    def test_stats_cached_separately(self):
        strat = get_strategy("disk_revolve")
        s1 = strat.measured(21, 3)
        s2 = strat.measured(21, 3)
        assert s2 is s1
        info = schedule_cache_info()
        assert info.stats == 1 and info.hits >= 1

    def test_c_insensitive_families_share_entries(self):
        sqrt = get_strategy("sqrt")
        assert sqrt.schedule(25, 10) is sqrt.schedule(25, 24)
        assert schedule_cache_info().schedules == 1


class TestRepetitionNumber:
    def test_matches_linear_scan(self):
        for c in (1, 2, 3, 5, 17):
            for l in range(1, 400, 7):
                r = 0
                while beta(c, r) < l:
                    r += 1
                assert repetition_number(l, c) == r, (l, c)

    def test_single_slot_closed_form_deep_chain(self):
        """c = 1 gives r = l - 1; the old O(r) scan made this quadratic
        work across a sweep, the doubling search is logarithmic."""
        for l in (1, 2, 1_000, 1_000_000):
            assert repetition_number(l, 1) == max(0, l - 1)

    def test_boundary_is_minimal(self):
        for l, c in ((4, 3), (5, 3), (152, 8), (10_000, 4)):
            r = repetition_number(l, c)
            assert beta(c, r) >= l
            assert r == 0 or beta(c, r - 1) < l
