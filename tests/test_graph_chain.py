"""Linearization: cut points, segment chains, homogenization."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    LinearChain,
    TensorSpec,
    cut_points,
    homogenize,
    linearize,
)
from repro.zoo import build_resnet, plain_chain, simple_cnn, tiny_residual


class TestCutPoints:
    def test_sequential_every_node_is_cut(self):
        net = plain_chain(depth=4)
        cuts = cut_points(net)
        # input + each of the 4 linear steps
        assert len(cuts) == 5

    def test_residual_cuts_at_block_boundaries(self):
        g = tiny_residual()
        cuts = cut_points(g)
        # Interior of a residual block is never a cut (skip edge crosses it).
        assert "b0_conv1" not in cuts
        assert "b0_relu2" in cuts  # block output is a cut
        assert "b1_relu2" in cuts

    def test_final_node_always_cut(self):
        g = tiny_residual()
        assert cut_points(g)[-1] == "fc"

    def test_resnet18_has_block_cuts(self):
        g = build_resnet(18, image_size=64)
        cuts = cut_points(g)
        # stem pool + 8 blocks + head pieces; at least one cut per block.
        for i in range(2):
            assert f"layer1.{i}.relu2" in cuts
        assert "head.fc" in cuts


class TestLinearize:
    def test_total_activations_preserved(self):
        g = tiny_residual()
        chain = linearize(g)
        g.infer()
        input_bytes = chain.input_bytes
        # stage boundaries + interiors + input == all node outputs
        assert chain.total_act_bytes + input_bytes == g.activation_bytes_per_sample()

    def test_weight_bytes_preserved(self):
        g = tiny_residual()
        assert linearize(g).weight_bytes == g.trainable_bytes

    def test_flops_preserved(self):
        g = tiny_residual()
        chain = linearize(g)
        assert chain.total_flops == g.total_flops_per_sample()

    def test_stage_names_are_cut_nodes(self):
        g = simple_cnn(image_size=16)
        chain = linearize(g)
        assert [s.name for s in chain.stages][-1] == "fc2"

    def test_homogeneous_detection(self):
        net = plain_chain(depth=5, features=8)
        chain = linearize(net)
        assert chain.is_homogeneous()

    def test_resnet_chain_heterogeneous(self):
        g = build_resnet(18, image_size=64)
        chain = linearize(g)
        assert not chain.is_homogeneous()
        assert chain.length >= 10  # stem, 8 blocks, head pieces


class TestHomogenize:
    def test_paper_linear_resnet_conventions(self):
        g = build_resnet(18, image_size=64)
        chain = homogenize(g, depth=18)
        assert chain.length == 18
        assert chain.weight_bytes == g.trainable_bytes
        total = g.activation_bytes_per_sample()
        assert chain.act_bytes == total // 18

    def test_depth_validation(self):
        g = simple_cnn(image_size=16)
        with pytest.raises(GraphError):
            homogenize(g, depth=0)

    def test_as_segment_chain_round_trip(self):
        chain = LinearChain(name="x", length=5, act_bytes=100, weight_bytes=400, step_flops=7)
        seg = chain.as_segment_chain()
        assert seg.length == 5
        assert seg.is_homogeneous()
        assert seg.total_act_bytes == 500
        assert seg.weight_bytes == 400


class TestLinearChainValidation:
    def test_rejects_bad_length(self):
        with pytest.raises(GraphError):
            LinearChain(name="x", length=0, act_bytes=1, weight_bytes=1)

    def test_rejects_negative_bytes(self):
        with pytest.raises(GraphError):
            LinearChain(name="x", length=1, act_bytes=-1, weight_bytes=1)

    def test_total_act(self):
        c = LinearChain(name="x", length=7, act_bytes=3, weight_bytes=0)
        assert c.total_act_bytes == 21
