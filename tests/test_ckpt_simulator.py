"""The schedule virtual machine: invariants, measurements, rejections."""

import pytest

from repro.checkpointing import (
    ChainSpec,
    Schedule,
    adjoint,
    advance,
    free,
    restore,
    simulate,
    snapshot,
    validate,
)
from repro.errors import ExecutionError, ScheduleError


def sched(l, slots, *actions):
    return Schedule(strategy="manual", length=l, slots=slots, actions=tuple(actions))


class TestHappyPath:
    def test_minimal_one_step(self):
        s = sched(1, 1, snapshot(0), restore(0), adjoint(1))
        stats = simulate(s)
        assert stats.forward_steps == 0
        assert stats.replay_steps == 1
        assert stats.peak_slots == 1

    def test_two_step_with_snapshot(self):
        s = sched(
            2, 2,
            snapshot(0), advance(1), snapshot(1),
            restore(1), adjoint(2),
            restore(0), adjoint(1),
        )
        stats = simulate(s)
        assert stats.forward_steps == 1
        assert stats.executions == (2, 1)  # F1: advance+replay, F2: replay

    def test_peak_bytes_weighted_by_sizes(self):
        spec = ChainSpec(name="w", act_bytes=(5, 1, 10), fwd_cost=(1, 1), bwd_cost=(1, 1))
        s = sched(
            2, 2,
            snapshot(0), advance(1), snapshot(1),
            restore(1), adjoint(2), restore(0), adjoint(1),
        )
        stats = simulate(s, spec)
        assert stats.peak_slot_bytes == 5 + 1
        # peak_bytes additionally charges the cursor; the peak is at the
        # final restore(0): slots {x0:5, x1:1} + cursor x0 (5) = 11.
        assert stats.peak_bytes == 5 + 1 + 5

    def test_free_reduces_occupancy(self):
        s = sched(
            2, 2,
            snapshot(0), advance(1), snapshot(1), free(1),
            restore(0), advance(1), adjoint(2),
            restore(0), adjoint(1),
        )
        stats = simulate(s)
        assert stats.restores == 2
        # freeing x_1 forces the re-advance measured as an extra forward
        assert stats.extra_forward_steps() == 1

    def test_extra_forward_steps_convention(self):
        """store-all-like run has extra == 0."""
        s = sched(
            2, 2,
            snapshot(0), advance(1), snapshot(1),
            restore(1), adjoint(2), restore(0), adjoint(1),
        )
        assert simulate(s).extra_forward_steps() == 0

    def test_recompute_factor_one_for_no_recompute(self):
        spec = ChainSpec.homogeneous(2)
        s = sched(
            2, 2,
            snapshot(0), advance(1), snapshot(1),
            restore(1), adjoint(2), restore(0), adjoint(1),
        )
        assert simulate(s, spec).recompute_factor(spec) == pytest.approx(1.0)


class TestRejections:
    def test_advance_backwards(self):
        s = sched(2, 1, snapshot(0), advance(2), advance(1), adjoint(2))
        with pytest.raises(ExecutionError):
            simulate(s)

    def test_advance_past_end(self):
        s = sched(2, 1, snapshot(0), advance(3))
        with pytest.raises(ExecutionError):
            simulate(s)

    def test_restore_empty_slot(self):
        s = sched(1, 1, restore(0), adjoint(1))
        with pytest.raises(ExecutionError):
            simulate(s)

    def test_free_empty_slot(self):
        s = sched(1, 1, free(0))
        with pytest.raises(ExecutionError):
            simulate(s)

    def test_snapshot_over_budget(self):
        s = sched(1, 1, snapshot(1))
        with pytest.raises(ExecutionError):
            simulate(s)

    def test_adjoint_out_of_order(self):
        s = sched(2, 2, snapshot(0), adjoint(1))
        with pytest.raises(ExecutionError):
            simulate(s)

    def test_adjoint_wrong_cursor(self):
        s = sched(2, 1, snapshot(0), adjoint(2))
        with pytest.raises(ExecutionError):
            simulate(s)

    def test_incomplete_backward(self):
        s = sched(2, 2, snapshot(0), advance(1), adjoint(2))
        with pytest.raises(ExecutionError):
            simulate(s)

    def test_length_mismatch(self):
        s = sched(2, 1, snapshot(0))
        with pytest.raises(ExecutionError):
            simulate(s, ChainSpec.homogeneous(3))

    def test_validate_is_boolean(self):
        good = sched(1, 1, snapshot(0), restore(0), adjoint(1))
        bad = sched(1, 1, snapshot(0))
        assert validate(good)
        assert not validate(bad)


class TestScheduleContainer:
    def test_counts(self):
        s = sched(1, 1, snapshot(0), restore(0), adjoint(1))
        assert s.snapshot_count == 1
        assert s.adjoint_count == 1
        assert len(s) == 3

    def test_used_slots(self):
        s = sched(2, 3, snapshot(2), advance(1), snapshot(0))
        assert s.used_slots() == {0, 2}

    def test_describe_truncates(self):
        s = sched(1, 1, *([snapshot(0)] * 100))
        text = s.describe(max_lines=5)
        assert "more" in text

    def test_validation(self):
        with pytest.raises(ScheduleError):
            Schedule(strategy="x", length=0, slots=1)
        with pytest.raises(ScheduleError):
            Schedule(strategy="x", length=1, slots=-1)

    def test_action_negative_arg(self):
        with pytest.raises(ScheduleError):
            advance(-1)
