"""Provenance manifests: schema, hashes, end-to-end validation."""

import pytest

from repro import lab
from repro.errors import ManifestError

import repro.experiments  # noqa: F401


@pytest.fixture
def run_store(tmp_path):
    """One cheap spec run into a store, manifest and all."""
    spec = lab.ExperimentSpec(
        name="t_mani",
        title="manifest probe",
        compute=lambda params, inputs: {"v": params["x"]},
        renderers={"ascii": lambda d: f"v={d['v']}\n"},
        params=(
            lab.Param("x", int, default=4),
            lab.Param("source", str, default="paper", choices=("ours", "paper")),
            lab.Param("seed", int, default=7),
        ),
        default_units=(lab.UnitDef({}, (("t_mani.txt", "ascii"),)),),
        code_fingerprint="d" * 64,
    )
    lab.register(spec)
    store = lab.ArtifactStore(tmp_path)
    lab.run_units(lab.default_units(["t_mani"]), store)
    yield spec, store
    lab.unregister("t_mani")


class TestBuildAndValidate:
    def test_manifest_fields(self, run_store):
        spec, store = run_store
        doc = store.read_manifest("t_mani")
        assert doc["manifest_version"] == lab.MANIFEST_VERSION
        assert doc["spec"] == "t_mani"
        assert doc["constants_source"] == "paper"  # from the source param
        assert doc["seed"] == 7  # from the seed param
        assert doc["code_fingerprint"] == "d" * 64
        assert doc["params"] == {"x": 4, "source": "paper", "seed": 7}
        assert list(doc["outputs"]) == ["t_mani.txt"]
        assert doc["cached"] is False
        from repro import __version__

        assert doc["repro_version"] == __version__

    def test_validates_clean(self, run_store):
        _, store = run_store
        lab.validate_manifest(store.read_manifest("t_mani"), store, "t_mani")
        assert lab.check_manifests(store) == 1

    def test_missing_field_rejected(self, run_store):
        _, store = run_store
        doc = store.read_manifest("t_mani")
        del doc["outputs"]
        with pytest.raises(ManifestError):
            lab.validate_manifest(doc, store, "t_mani")

    def test_bad_constants_source_rejected(self, run_store):
        _, store = run_store
        doc = store.read_manifest("t_mani")
        doc["constants_source"] = "vibes"
        with pytest.raises(ManifestError):
            lab.validate_manifest(doc, store, "t_mani")

    def test_output_tamper_detected(self, run_store):
        _, store = run_store
        store.artifact_path("t_mani.txt").write_text("tampered\n")
        with pytest.raises(ManifestError, match="hash mismatch"):
            lab.validate_manifest(store.read_manifest("t_mani"), store, "t_mani")

    def test_output_deletion_detected(self, run_store):
        _, store = run_store
        store.artifact_path("t_mani.txt").unlink()
        with pytest.raises(ManifestError, match="missing"):
            lab.validate_manifest(store.read_manifest("t_mani"), store, "t_mani")

    def test_payload_tamper_detected(self, run_store):
        _, store = run_store
        doc = store.read_manifest("t_mani")
        store.cache_path(doc["key"]).write_text("{}")
        with pytest.raises(ManifestError, match="corrupted"):
            lab.validate_manifest(doc, store, "t_mani")

    def test_unreadable_manifest_fails_check(self, run_store):
        _, store = run_store
        store.manifest_path("t_mani").write_text("{nope")
        with pytest.raises(ManifestError, match="unreadable"):
            lab.check_manifests(store)


class TestDefaultRunManifests:
    def test_all_defaults_validate(self, tmp_path):
        store = lab.ArtifactStore(tmp_path)
        report = lab.run_units(lab.default_units(), store)
        n = lab.check_manifests(store)
        # every unit with declared outputs has one validating manifest
        assert n == sum(1 for o in report.outcomes if o.outputs)

    def test_summary_records_parents(self, tmp_path):
        store = lab.ArtifactStore(tmp_path)
        report = lab.run_units(lab.default_units(), store)
        doc = store.read_manifest("summary")
        keys = {o.key for o in report.outcomes}
        assert set(doc["parents"]) == {s for s, _ in lab.get_spec("summary").deps}
        assert doc["parents"]["figure1"] in keys

    def test_paper_units_flag_paper_source(self, tmp_path):
        store = lab.ArtifactStore(tmp_path)
        lab.run_units(lab.default_units(["table1"]), store)
        assert store.read_manifest("table1_ours")["constants_source"] == "ours"
        assert store.read_manifest("table1_paper")["constants_source"] == "paper"
