"""The unified schedule VM: invariants, stats, hooks."""

import pytest

from repro.checkpointing import (
    ChainSpec,
    Schedule,
    adjoint,
    advance,
    free,
    restore,
    revolve_schedule,
    simulate,
    snapshot,
    store_all_schedule,
)
from repro.engine import RunStats, SimBackend, StepStats, compose, execute
from repro.errors import ExecutionError


def _sched(l, slots, *actions, strategy="test"):
    return Schedule(strategy=strategy, length=l, slots=slots, actions=tuple(actions))


class TestInvariants:
    def test_length_mismatch(self):
        sch = revolve_schedule(5, 2)
        with pytest.raises(ExecutionError, match="chain length"):
            execute(sch, SimBackend(ChainSpec.homogeneous(7)))

    def test_advance_backwards(self):
        sch = _sched(3, 1, advance(2), advance(1))
        with pytest.raises(ExecutionError, match="ADVANCE to 1 from cursor 2"):
            execute(sch, SimBackend(ChainSpec.homogeneous(3)))

    def test_advance_past_end(self):
        sch = _sched(3, 1, advance(4))
        with pytest.raises(ExecutionError, match=r"ADVANCE to 4 .*l=3"):
            execute(sch, SimBackend(ChainSpec.homogeneous(3)))

    def test_snapshot_over_budget(self):
        sch = _sched(3, 2, snapshot(2))
        with pytest.raises(ExecutionError, match="SNAPSHOT into slot 2 exceeds budget 2"):
            execute(sch, SimBackend(ChainSpec.homogeneous(3)))

    def test_snapshot_occupied_slot(self):
        sch = _sched(3, 2, snapshot(0), advance(1), snapshot(0))
        with pytest.raises(
            ExecutionError, match=r"SNAPSHOT into occupied slot 0 \(holds x_0\)"
        ):
            execute(sch, SimBackend(ChainSpec.homogeneous(3)))

    def test_snapshot_after_free_is_fine(self):
        sch = _sched(1, 1, snapshot(0), free(0), snapshot(0), restore(0), adjoint(1))
        run = execute(sch, SimBackend(ChainSpec.homogeneous(1)))
        assert run.snapshots_taken == 2

    def test_restore_empty(self):
        sch = _sched(3, 2, restore(1))
        with pytest.raises(ExecutionError, match="RESTORE from empty slot 1"):
            execute(sch, SimBackend(ChainSpec.homogeneous(3)))

    def test_free_empty(self):
        sch = _sched(3, 2, free(0))
        with pytest.raises(ExecutionError, match="FREE of empty slot 0"):
            execute(sch, SimBackend(ChainSpec.homogeneous(3)))

    def test_adjoint_out_of_order(self):
        sch = _sched(2, 1, snapshot(0), advance(1), adjoint(1))
        with pytest.raises(ExecutionError, match=r"ADJOINT\(1\) but pending backward is 2"):
            execute(sch, SimBackend(ChainSpec.homogeneous(2)))

    def test_adjoint_wrong_cursor(self):
        sch = _sched(2, 1, snapshot(0), adjoint(2))
        with pytest.raises(ExecutionError, match=r"ADJOINT\(2\) requires cursor at 1"):
            execute(sch, SimBackend(ChainSpec.homogeneous(2)))

    def test_unfinished_backwards(self):
        sch = _sched(2, 1, snapshot(0), advance(1), adjoint(2))
        with pytest.raises(ExecutionError, match="backward steps 1..1 still pending"):
            execute(sch, SimBackend(ChainSpec.homogeneous(2)))


class TestRunStats:
    def test_matches_simulate_wrapper(self):
        sch = revolve_schedule(20, 4)
        spec = ChainSpec.homogeneous(20, act_bytes=3)
        run = execute(sch, SimBackend(spec))
        stats = simulate(sch, spec)
        assert isinstance(run, RunStats)
        assert run.forward_steps == stats.forward_steps
        assert run.replay_steps == stats.replay_steps == 20
        assert run.peak_slots == stats.peak_slots
        assert run.peak_bytes == stats.peak_bytes
        assert run.peak_slot_bytes == stats.peak_slot_bytes
        assert run.executions == stats.executions
        assert run.snapshots_taken == stats.snapshots_taken
        assert run.restores == stats.restores
        assert run.total_time == stats.total_time

    def test_untired_backend_has_no_tiers(self):
        run = execute(store_all_schedule(6), SimBackend(ChainSpec.homogeneous(6)))
        assert run.tiers == ()
        assert run.transfer_seconds == 0.0
        with pytest.raises(KeyError):
            run.tier("disk")


class TestStepHook:
    def test_one_callback_per_action(self):
        sch = revolve_schedule(12, 3)
        seen: list[StepStats] = []
        execute(sch, SimBackend(ChainSpec.homogeneous(12)), on_step=seen.append)
        assert len(seen) == len(sch.actions)
        assert [s.pos for s in seen] == list(range(len(sch.actions)))
        assert seen[-1].backwards_done == 12
        done = [s.backwards_done for s in seen]
        assert done == sorted(done)

    def test_step_stats_mirror_vm_state(self):
        # ADJOINT(k) replays step k itself (youturn), so it runs from k-1.
        sch = _sched(2, 1, snapshot(0), advance(1), adjoint(2), restore(0), adjoint(1))
        seen = []
        execute(sch, SimBackend(ChainSpec.homogeneous(2, act_bytes=5)), on_step=seen.append)
        kinds = [s.kind.value for s in seen]
        assert kinds == ["snapshot", "advance", "adjoint", "restore", "adjoint"]
        assert [s.cursor for s in seen] == [0, 1, 1, 0, 0]
        assert [s.occupied_slots for s in seen] == [1, 1, 1, 1, 1]
        assert [s.forward_steps for s in seen] == [0, 1, 1, 1, 1]
        assert [s.replay_steps for s in seen] == [0, 0, 1, 1, 2]
        # slot 0 holds x_0 (5 bytes) throughout; cursor adds 5 more.
        assert all(s.slot_bytes == 5 for s in seen)
        assert all(s.live_bytes == 10 for s in seen)

    def test_compose_skips_none_and_fans_out(self):
        assert compose(None, None) is None
        a, b = [], []
        sole = a.append
        assert compose(sole, None) is sole
        both = compose(a.append, b.append)
        execute(
            store_all_schedule(3), SimBackend(ChainSpec.homogeneous(3)), on_step=both
        )
        assert len(a) == len(b) > 0
