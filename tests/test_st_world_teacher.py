"""Viewpoint world and teacher: the viewpoint problem must be real."""

import numpy as np
import pytest

from repro.studentteacher import TeacherModel, ViewpointWorld


@pytest.fixture
def world():
    return ViewpointWorld(num_classes=5, feature_dim=8, rng=np.random.default_rng(0))


class TestWorld:
    def test_prototypes_well_separated(self, world):
        d = np.linalg.norm(world.prototypes[0] - world.prototypes[1])
        assert d > 1.0

    def test_frontal_sample_shapes(self, world):
        x, y = world.sample_frontal(10)
        assert x.shape == (50, 8)
        assert set(np.unique(y)) == set(range(5))

    def test_observation_noise_only_at_fixed_angle(self, world):
        a = world.observe(0, 0.0, np.random.default_rng(1))
        b = world.observe(0, 0.0, np.random.default_rng(2))
        assert a.shape == b.shape
        assert not np.array_equal(a, b)  # noise differs
        assert np.linalg.norm(a - b) < 3.0  # but same underlying signal

    def test_aspect_confusion_drifts_toward_neighbour(self, world):
        """At large θ, class c's observation approaches class c+1's
        prototype — the engineered viewpoint failure mode."""
        world.noise = 0.0
        frontal = world.observe(0, 0.0)
        skewed = world.observe(0, 75.0)
        p0, p1 = world.prototypes[0], world.prototypes[1]
        assert np.linalg.norm(frontal - p0) < np.linalg.norm(frontal - p1)
        assert np.linalg.norm(skewed - p1) < np.linalg.norm(skewed - p0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ViewpointWorld(num_classes=1)
        with pytest.raises(ValueError):
            ViewpointWorld(num_classes=3, feature_dim=1)


class TestEpisode:
    def test_track_counts(self, world):
        ep = world.generate_episode(n_subjects=10, frames_per_crossing=15)
        assert len(ep.tracks) == 10
        subject_dets = [d for f in ep.frames for d in f.detections if d.truth_track >= 0]
        assert len(subject_dets) == 10 * 15

    def test_angle_sweeps_to_frontal(self, world):
        ep = world.generate_episode(n_subjects=3, frames_per_crossing=10, camera_skew_deg=50.0)
        for tr in ep.tracks:
            dets = [
                d
                for f in ep.frames
                for d in f.detections
                if d.truth_track == tr.track_id
            ]
            angles = [d.angle_deg for d in dets]
            assert angles[0] == pytest.approx(50.0)
            assert abs(angles[-1]) <= 12.0 + 1e-9

    def test_positions_cross_frame(self, world):
        ep = world.generate_episode(n_subjects=2, frames_per_crossing=10)
        tr = ep.tracks[0]
        dets = [d for f in ep.frames for d in f.detections if d.truth_track == tr.track_id]
        xs = [d.position[0] for d in dets]
        assert abs(xs[-1] - xs[0]) == pytest.approx(world.frame_width)

    def test_clutter_marked(self, world):
        ep = world.generate_episode(n_subjects=2, frames_per_crossing=5, clutter_rate=2.0)
        clutter = [d for f in ep.frames for d in f.detections if d.truth_track == -1]
        assert len(clutter) > 0

    def test_validation(self, world):
        with pytest.raises(ValueError):
            world.generate_episode(n_subjects=0)


class TestTeacher:
    def test_frontal_accuracy_high(self, world):
        x, y = world.sample_frontal(100)
        teacher = TeacherModel.fit(x, y)
        assert teacher.accuracy(x, y) > 0.95

    def test_viewpoint_problem_exists(self, world):
        """Accuracy at 60 degrees collapses versus frontal — the paper's
        premise, quantified."""
        x, y = world.sample_frontal(100)
        teacher = TeacherModel.fit(x, y)
        x_skew = np.stack([world.observe(int(c), 60.0) for c in y])
        assert teacher.accuracy(x_skew, y) < 0.5

    def test_accuracy_monotone_degrades(self, world):
        x, y = world.sample_frontal(200)
        teacher = TeacherModel.fit(x, y)
        accs = []
        for angle in (0.0, 20.0, 40.0, 60.0):
            xa = np.stack([world.observe(int(c), angle) for c in y])
            accs.append(teacher.accuracy(xa, y))
        assert accs[0] > accs[-1]
        assert accs == sorted(accs, reverse=True)

    def test_confidence_in_unit_interval(self, world):
        x, y = world.sample_frontal(20)
        teacher = TeacherModel.fit(x, y)
        _, conf = teacher.predict(x)
        assert ((conf > 0) & (conf <= 1)).all()

    def test_accuracy_by_angle_bins(self, world):
        x, y = world.sample_frontal(50)
        teacher = TeacherModel.fit(x, y)
        angles = np.zeros(len(y))
        out = teacher.accuracy_by_angle(x, y, angles, np.array([15.0, 30.0]))
        assert 15.0 in out
        assert 30.0 not in out  # no samples in that bin

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            TeacherModel.fit(np.zeros((3, 2, 2)), np.zeros(3, dtype=int))
