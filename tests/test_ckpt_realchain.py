"""Planning on real linearized block chains (interiors charged)."""

import pytest

from repro.checkpointing import plan_real_chain, working_set_bytes
from repro.errors import MemoryBudgetError
from repro.graph import linearize
from repro.memory import account
from repro.units import GB, MB
from repro.zoo import build_resnet, tiny_residual


@pytest.fixture(scope="module")
def r18_chain():
    return linearize(build_resnet(18, image_size=224))


class TestWorkingSet:
    def test_positive_and_batch_scaled(self, r18_chain):
        w1 = working_set_bytes(r18_chain, 1)
        w4 = working_set_bytes(r18_chain, 4)
        assert w1 > 0
        assert w4 == 4 * w1

    def test_dominated_by_early_blocks(self, r18_chain):
        """The worst working set is an early high-resolution block."""
        acts = [r18_chain.input_bytes] + [s.act_bytes for s in r18_chain.stages]
        sets = [
            acts[i] + s.interior_bytes + s.act_bytes
            for i, s in enumerate(r18_chain.stages)
        ]
        assert sets.index(max(sets)) < len(sets) // 2


class TestPlanRealChain:
    def test_plan_fits_and_is_conservative(self, r18_chain):
        plan = plan_real_chain(r18_chain, budget_bytes=GB, batch_size=4)
        assert plan.fits
        assert plan.peak_bytes <= GB
        assert plan.rho >= 1.0

    def test_generous_budget_no_recompute(self, r18_chain):
        plan = plan_real_chain(r18_chain, budget_bytes=16 * GB, batch_size=1)
        assert plan.extra_forward_cost == pytest.approx(0.0)
        assert plan.rho == pytest.approx(1.0)

    def test_tighter_budget_costs_more_rho(self, r18_chain):
        acct = account(build_resnet(18, image_size=224))
        base = acct.fixed_bytes + working_set_bytes(r18_chain, 8)
        loose = plan_real_chain(r18_chain, budget_bytes=int(base + 8 * 40 * MB), batch_size=8)
        tight = plan_real_chain(r18_chain, budget_bytes=int(base + 8 * 6 * MB), batch_size=8)
        assert tight.extra_forward_cost >= loose.extra_forward_cost
        assert tight.peak_snapshot_bytes <= loose.peak_snapshot_bytes

    def test_snapshot_budget_respected(self, r18_chain):
        plan = plan_real_chain(r18_chain, budget_bytes=GB, batch_size=4)
        assert plan.peak_snapshot_bytes <= plan.snapshot_budget

    def test_hopeless_budget_raises(self, r18_chain):
        with pytest.raises(MemoryBudgetError):
            plan_real_chain(r18_chain, budget_bytes=200 * MB, batch_size=8)

    def test_custom_fixed_bytes(self, r18_chain):
        plan = plan_real_chain(r18_chain, budget_bytes=GB, fixed_bytes=0, batch_size=1)
        assert plan.fixed_bytes == 0
        assert plan.peak_bytes == plan.peak_snapshot_bytes + plan.working_set

    def test_small_residual_graph(self):
        chain = linearize(tiny_residual())
        plan = plan_real_chain(chain, budget_bytes=10 * MB, batch_size=2)
        assert plan.fits
        assert plan.schedule.length == chain.length

    def test_batch_validation(self, r18_chain):
        with pytest.raises(ValueError):
            plan_real_chain(r18_chain, budget_bytes=GB, batch_size=0)
