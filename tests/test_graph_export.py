"""DOT and record export of graphs."""

import pytest

from repro.graph import to_dot, to_records
from repro.zoo import simple_cnn, tiny_residual


class TestDot:
    def test_valid_digraph_structure(self):
        dot = to_dot(tiny_residual())
        assert dot.startswith('digraph "TinyResidual" {')
        assert dot.rstrip().endswith("}")

    def test_every_node_and_edge_present(self):
        g = tiny_residual()
        dot = to_dot(g)
        for node in g.nodes:
            assert f'"{node.name}"' in dot
        n_edges = sum(len(n.inputs) for n in g.nodes)
        assert dot.count("->") == n_edges

    def test_edge_labels_carry_bytes(self):
        dot = to_dot(simple_cnn(image_size=16))
        assert "KB" in dot or "MB" in dot

    def test_param_counts_in_labels(self):
        dot = to_dot(simple_cnn(image_size=16))
        assert "params" in dot

    def test_rankdir(self):
        assert "rankdir=LR" in to_dot(simple_cnn(image_size=16), rankdir="LR")
        with pytest.raises(ValueError):
            to_dot(simple_cnn(image_size=16), rankdir="XX")


class TestRecords:
    def test_one_record_per_node(self):
        g = tiny_residual()
        records = to_records(g)
        assert len(records) == len(g)

    def test_record_fields(self):
        rec = to_records(simple_cnn(image_size=16))[1]  # first conv
        assert rec["kind"] == "Conv2d"
        assert rec["output_shape"] == [16, 16, 16]
        assert rec["trainable_params"] > 0
        assert rec["inputs"] == ["input"]

    def test_totals_recoverable(self):
        g = tiny_residual()
        records = to_records(g)
        assert sum(r["trainable_params"] for r in records) == g.trainable_numel
        assert sum(r["output_bytes"] for r in records) == g.activation_bytes_per_sample()
