"""Makespan analysis: Daly's closed form vs the Monte-Carlo replay,
and the empirical recovery of the Young/Daly optimum."""

import numpy as np
import pytest

from repro.errors import PlanningError
from repro.resilience import (
    PoissonFaults,
    WeibullFaults,
    daly_expected_makespan,
    overhead_vs_fault_rate,
    simulate_makespan,
    sweep_intervals,
    young_daly_interval,
)


class TestClosedForm:
    def test_zero_work_is_free(self):
        assert daly_expected_makespan(0.0, 100.0, 5.0, 60.0, 3600.0) == 0.0

    def test_reliable_node_pays_only_snapshots(self):
        """MTBF >> work: e^{t/M}-1 -> t/M, so the expectation collapses
        to plain work + snapshot writes."""
        out = daly_expected_makespan(1000.0, 100.0, 5.0, 60.0, 1e12)
        assert out == pytest.approx(1000.0 + 9 * 5.0, rel=1e-6)

    def test_final_segment_skips_snapshot(self):
        exact = daly_expected_makespan(200.0, 100.0, 5.0, 0.0, 1e12)
        assert exact == pytest.approx(205.0, rel=1e-6)  # one write, not two

    def test_convex_in_interval(self):
        """Too-frequent and too-rare snapshotting both cost more than tau*."""
        mtbf, delta = 6 * 3600.0, 30.0
        tau = young_daly_interval(mtbf, delta)
        at = lambda i: daly_expected_makespan(86400.0, i, delta, 60.0, mtbf)  # noqa: E731
        assert at(tau) < at(tau / 8)
        assert at(tau) < at(tau * 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            daly_expected_makespan(-1.0, 10.0, 1.0, 1.0, 100.0)
        with pytest.raises(ValueError):
            daly_expected_makespan(10.0, 0.0, 1.0, 1.0, 100.0)
        with pytest.raises(ValueError):
            daly_expected_makespan(10.0, 1.0, -1.0, 1.0, 100.0)


class TestSimulationAgreement:
    def test_monte_carlo_matches_closed_form(self):
        mtbf, delta = 4 * 3600.0, 20.0
        tau = young_daly_interval(mtbf, delta)
        predicted = daly_expected_makespan(43200.0, tau, delta, 60.0, mtbf)
        measured = simulate_makespan(
            43200.0, tau, delta, 60.0, PoissonFaults(mtbf),
            np.random.default_rng(0), trials=120,
        )
        assert measured == pytest.approx(predicted, rel=0.05)

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            simulate_makespan(
                100.0, 10.0, 1.0, 1.0, PoissonFaults(100.0),
                np.random.default_rng(0), trials=0,
            )


class TestYoungDalyRecovery:
    @pytest.mark.parametrize(
        "mtbf_hours,delta",
        [(6.0, 30.0), (2.0, 5.0)],  # the >= 2 (MTBF, cost) settings
    )
    def test_sweep_recovers_optimum(self, mtbf_hours, delta):
        """The measured minimum lands on tau*'s grid point or a factor-2
        neighbour — the subsystem's acceptance criterion."""
        sweep = sweep_intervals(
            24 * 3600.0, delta, 60.0, mtbf_hours * 3600.0, trials=60, seed=0
        )
        assert sweep.tau_star_seconds == pytest.approx(
            young_daly_interval(mtbf_hours * 3600.0, delta)
        )
        assert sweep.recovers_young_daly()

    def test_render_marks_best(self):
        sweep = sweep_intervals(6 * 3600.0, 10.0, 60.0, 3 * 3600.0, trials=10, seed=1)
        text = sweep.render()
        assert "tau*" in text and "<-*" in text
        assert len(text.splitlines()) == len(sweep.rows) + 3

    def test_weibull_faults_accepted(self):
        sweep = sweep_intervals(
            4 * 3600.0, 15.0, 60.0, 3 * 3600.0,
            trials=10, seed=2, faults=WeibullFaults(3 * 3600.0, shape=0.8),
        )
        assert len(sweep.rows) == 7

    def test_empty_grid_rejected(self):
        with pytest.raises(PlanningError):
            sweep_intervals(100.0, 1.0, 1.0, 100.0, grid_factors=())


class TestOverheadCurve:
    def test_overhead_grows_as_mtbf_shrinks(self):
        rows = overhead_vs_fault_rate(
            12 * 3600.0, 10.0, 60.0,
            (3600.0, 6 * 3600.0, 24 * 3600.0), trials=40, seed=0,
        )
        assert [r.mtbf_seconds for r in rows] == [3600.0, 6 * 3600.0, 24 * 3600.0]
        predicted = [r.predicted_overhead for r in rows]
        assert predicted == sorted(predicted, reverse=True)
        measured = [r.measured_overhead for r in rows]
        assert measured[0] > measured[-1]
        assert all(m >= 0.0 for m in measured)

    def test_each_rate_uses_its_own_tau_star(self):
        rows = overhead_vs_fault_rate(
            3600.0, 10.0, 60.0, (3600.0, 4 * 3600.0), trials=5, seed=0
        )
        assert rows[1].tau_star_seconds == pytest.approx(
            2 * rows[0].tau_star_seconds
        )
