"""ASCII tables and plots."""

import pytest

from repro.experiments import Table, ascii_plot


class TestTable:
    def make(self):
        return Table(
            title="T",
            col_labels=["a", "b"],
            row_labels=["r1", "r2"],
            cells=[["1", "2"], ["3", "4"]],
            row_header="row",
        )

    def test_render_contains_everything(self):
        text = self.make().render()
        for token in ("T", "a", "b", "r1", "r2", "1", "4", "row"):
            assert token in text

    def test_render_aligned(self):
        lines = self.make().render().splitlines()
        data_lines = lines[1:]  # skip title
        widths = {len(l) for l in data_lines if l.strip()}
        assert len(widths) <= 2  # header/sep/data agree

    def test_csv(self):
        csv = self.make().to_csv()
        assert csv.splitlines()[0] == "row,a,b"
        assert csv.splitlines()[1] == "r1,1,2"

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Table(title="x", col_labels=["a"], row_labels=["r"], cells=[["1", "2"]])
        with pytest.raises(ValueError):
            Table(title="x", col_labels=["a"], row_labels=["r", "s"], cells=[["1"]])


class TestAsciiPlot:
    def test_marks_series(self):
        text = ascii_plot({"s1": [(1.0, 1.0), (2.0, 2.0)], "s2": [(1.0, 2.0)]})
        assert "o=s1" in text
        assert "x=s2" in text

    def test_hline_drawn(self):
        text = ascii_plot(
            {"s": [(0.0, 0.0), (1.0, 10.0)]},
            hline=5.0,
            hline_label="budget",
        )
        assert "=" in text
        assert "budget" in text

    def test_empty(self):
        assert "no data" in ascii_plot({})

    def test_degenerate_single_point(self):
        text = ascii_plot({"s": [(1.0, 1.0)]})
        assert "o" in text

    def test_axis_ranges_reported(self):
        text = ascii_plot({"s": [(1.0, 100.0), (3.0, 200.0)]}, x_label="rho", y_label="MB")
        assert "rho: 1" in text
        assert "MB: 100" in text
