"""Property tests over randomly generated networks.

A generator builds random sequential/residual CNN-ish graphs; the
invariants below must hold for every one of them — these are the
assumptions the whole memory/checkpointing stack rests on.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.checkpointing import ChainSpec, revolve_schedule, simulate
from repro.graph import (
    Add,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Graph,
    Linear,
    MaxPool2d,
    ReLU,
    TensorSpec,
    cut_points,
    homogenize,
    linearize,
    to_records,
)
from repro.memory import INFERENCE_POLICY, TRAINING_POLICY, account


def random_graph(seed: int, n_blocks: int, image: int, channels: int) -> Graph:
    """A random stack of conv/residual blocks with a linear head."""
    rng = np.random.default_rng(seed)
    g = Graph(name=f"rand{seed}")
    src = g.add_input("input", TensorSpec((3, image, image)))
    ch = 3
    size = image
    for b in range(n_blocks):
        kind = rng.integers(0, 3)
        if kind == 0:  # plain conv->bn->relu
            out_ch = channels * (1 + int(rng.integers(0, 3)))
            src = g.add(
                f"b{b}_conv",
                Conv2d(in_channels=ch, out_channels=out_ch, kernel_size=3, padding=1),
                [src],
            )
            src = g.add(f"b{b}_bn", BatchNorm2d(num_features=out_ch), [src])
            src = g.add(f"b{b}_relu", ReLU(), [src])
            ch = out_ch
        elif kind == 1 and size >= 4:  # pool
            src = g.add(f"b{b}_pool", MaxPool2d(kernel_size=2), [src])
            size //= 2
        else:  # residual pair
            y = g.add(
                f"b{b}_rconv1",
                Conv2d(in_channels=ch, out_channels=ch, kernel_size=3, padding=1),
                [src],
            )
            y = g.add(f"b{b}_rrelu", ReLU(), [y])
            y = g.add(
                f"b{b}_rconv2",
                Conv2d(in_channels=ch, out_channels=ch, kernel_size=3, padding=1),
                [y],
            )
            src = g.add(f"b{b}_radd", Add(), [y, src])
    src = g.add("gap", GlobalAvgPool(), [src])
    src = g.add("fc", Linear(in_features=ch, out_features=5), [src])
    g.infer()
    return g


graph_params = dict(
    seed=st.integers(0, 10_000),
    n_blocks=st.integers(1, 6),
    image=st.sampled_from([8, 16, 32]),
    channels=st.sampled_from([4, 8]),
)


@given(**graph_params)
@settings(max_examples=40, deadline=None)
def test_linearize_conserves_totals(seed, n_blocks, image, channels):
    """Chain totals equal graph totals for every random DAG."""
    g = random_graph(seed, n_blocks, image, channels)
    chain = linearize(g)
    assert chain.total_act_bytes + chain.input_bytes == g.activation_bytes_per_sample()
    assert chain.weight_bytes == g.trainable_bytes
    assert chain.total_flops == g.total_flops_per_sample()


@given(**graph_params)
@settings(max_examples=40, deadline=None)
def test_cut_points_are_sound(seed, n_blocks, image, channels):
    """No edge may cross a cut except from the cut node itself."""
    g = random_graph(seed, n_blocks, image, channels)
    order = g.topological_order()
    pos = {n: i for i, n in enumerate(order)}
    for cut in cut_points(g):
        i = pos[cut]
        for node in g.nodes:
            for src in node.inputs:
                if pos[node.name] > i:
                    assert pos[src] >= i or src == cut or pos[src] > i or src == cut, (
                        cut,
                        src,
                        node.name,
                    )
                    # any producer at or before the cut feeding past it
                    # must BE the cut node
                    if pos[src] <= i:
                        assert src == cut


@given(**graph_params)
@settings(max_examples=30, deadline=None)
def test_accounting_orderings(seed, n_blocks, image, channels):
    """Inference never costs more than training; input counts once."""
    g = random_graph(seed, n_blocks, image, channels)
    inf = account(g, INFERENCE_POLICY)
    train = account(g, TRAINING_POLICY)
    assert inf.fixed_bytes <= train.fixed_bytes
    assert inf.act_bytes_per_sample <= train.act_bytes_per_sample
    assert train.total_bytes(1) < train.total_bytes(2)


@given(**graph_params)
@settings(max_examples=25, deadline=None)
def test_homogenized_chain_schedulable(seed, n_blocks, image, channels):
    """Every random graph homogenizes into a schedulable chain."""
    g = random_graph(seed, n_blocks, image, channels)
    depth = max(2, len(g) // 3)
    chain = homogenize(g, depth=depth)
    spec = ChainSpec.from_linear_chain(chain)
    stats = simulate(revolve_schedule(depth, 2), spec)
    assert stats.replay_steps == depth


@given(**graph_params)
@settings(max_examples=25, deadline=None)
def test_records_reconstruct_totals(seed, n_blocks, image, channels):
    g = random_graph(seed, n_blocks, image, channels)
    records = to_records(g)
    assert sum(r["trainable_params"] for r in records) == g.trainable_numel
    assert len(records) == len(g)
