"""Ablation experiments: strategy dominance, batch trade-off, harvesting."""

import math

import pytest

from repro.edge import ODROID_XU4, TrainingWorkload
from repro.experiments import (
    batch_tradeoff,
    batch_tradeoff_table,
    harvest_ablation,
    strategy_ablation,
    strategy_ablation_table,
)
from repro.studentteacher import PipelineConfig, StudentConfig
from repro.units import MB


class TestStrategyAblation:
    def test_revolve_dominates_everywhere(self):
        data = strategy_ablation(lengths=(18, 50, 152), slot_budgets=(3, 8, 21))
        for rhos in data.values():
            assert rhos["revolve"] <= rhos["uniform"] + 1e-12
            assert rhos["revolve"] <= rhos["sqrt"] + 1e-12

    def test_gap_widens_at_small_budgets(self):
        """Where uniform is feasible, its overhead gap vs revolve shrinks
        as the budget grows."""
        data = strategy_ablation(lengths=(152,), slot_budgets=(21, 34, 55))
        gaps = []
        for c in (21, 34, 55):
            rhos = data[(152, c)]
            if math.isfinite(rhos["uniform"]):
                gaps.append(rhos["uniform"] - rhos["revolve"])
        assert gaps == sorted(gaps, reverse=True)

    def test_table_renders(self):
        text = strategy_ablation_table(lengths=(18,), slot_budgets=(3,)).render()
        assert "revolve" in text and "uniform" in text


def _workload():
    return TrainingWorkload(
        model="ResNet50",
        chain_length=50,
        slot_act_bytes_per_sample=3 * MB,
        fixed_bytes=390 * MB,
        flops_per_sample=8e9,
        n_images=5_000,
    )


class TestBatchTradeoff:
    def test_points_have_plan_fields(self):
        pts = batch_tradeoff(_workload(), ODROID_XU4)
        assert pts
        for p in pts:
            assert p.rho >= 1.0
            assert 0 < p.efficiency <= 1.0
            assert p.memory_mb <= ODROID_XU4.mem_bytes / MB + 1

    def test_large_batch_wins_despite_rho(self):
        """Section VI closing remark quantified."""
        pts = {p.batch_size: p for p in batch_tradeoff(_workload(), ODROID_XU4)}
        assert pts[32].rho > 1.0  # needed checkpointing
        assert pts[32].epoch_seconds < pts[1].epoch_seconds

    def test_table_renders(self):
        text = batch_tradeoff_table(_workload(), ODROID_XU4).render()
        assert "epoch" in text


class TestHarvestAblation:
    @pytest.fixture(scope="class")
    def points(self):
        cfg = PipelineConfig(n_subjects=40, student=StudentConfig(epochs=2))
        return harvest_ablation(cfg, thresholds=(0.5, 0.9))

    def test_covers_grid(self, points):
        assert len(points) == 4
        assert {p.label_source for p in points} == {"track_end", "max_confidence"}

    def test_track_end_at_least_as_pure(self, points):
        by = {(p.label_source, p.confidence_threshold): p for p in points}
        for thr in (0.5, 0.9):
            assert by[("track_end", thr)].purity >= by[("max_confidence", thr)].purity

    def test_stricter_threshold_fewer_samples(self, points):
        by = {(p.label_source, p.confidence_threshold): p for p in points}
        for src in ("track_end", "max_confidence"):
            assert by[(src, 0.9)].samples <= by[(src, 0.5)].samples
