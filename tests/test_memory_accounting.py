"""Accounting policies: fixed/variable decomposition of training memory."""

import pytest

from repro.memory import (
    ADAM_POLICY,
    INFERENCE_POLICY,
    MOMENTUM_POLICY,
    SGD_POLICY,
    TRAINING_POLICY,
    AccountingPolicy,
    account,
)
from repro.zoo import build_resnet, simple_cnn


@pytest.fixture(scope="module")
def r18():
    return build_resnet(18, image_size=64)


class TestPolicies:
    def test_weight_copies_ladder(self):
        assert INFERENCE_POLICY.weight_copies == 1
        assert SGD_POLICY.weight_copies == 2
        assert MOMENTUM_POLICY.weight_copies == 3
        assert ADAM_POLICY.weight_copies == 4

    def test_default_is_paper_convention(self):
        assert TRAINING_POLICY.weight_copies == 4

    def test_invalid_copies(self):
        with pytest.raises(ValueError):
            AccountingPolicy(name="bad", weight_copies=0)

    def test_invalid_multiplier(self):
        with pytest.raises(ValueError):
            AccountingPolicy(name="bad", activation_copies=0.0)


class TestAccount:
    def test_fixed_is_copies_times_weights_plus_buffers(self, r18):
        acct = account(r18, TRAINING_POLICY)
        assert acct.fixed_bytes == 4 * acct.weight_bytes + acct.buffer_bytes

    def test_inference_fixed_is_single_copy(self, r18):
        acct = account(r18, INFERENCE_POLICY)
        assert acct.fixed_bytes == acct.weight_bytes + acct.buffer_bytes

    def test_total_linear_in_batch(self, r18):
        acct = account(r18)
        t1, t3, t5 = (acct.total_bytes(k) for k in (1, 3, 5))
        assert t3 - t1 == 2 * acct.act_bytes_per_sample
        assert t5 - t3 == 2 * acct.act_bytes_per_sample

    def test_batch_validation(self, r18):
        with pytest.raises(ValueError):
            account(r18).total_bytes(0)

    def test_count_input_toggle(self, r18):
        with_input = account(r18, AccountingPolicy(name="a", count_input=True))
        without = account(r18, AccountingPolicy(name="b", count_input=False))
        diff = with_input.act_bytes_per_sample - without.act_bytes_per_sample
        assert diff == with_input.input_bytes_per_sample
        assert diff == 3 * 64 * 64 * 4

    def test_count_inplace_toggle(self, r18):
        w = account(r18, AccountingPolicy(name="a", count_inplace=True))
        wo = account(r18, AccountingPolicy(name="b", count_inplace=False))
        assert w.act_bytes_per_sample > wo.act_bytes_per_sample

    def test_activation_copies_scales(self, r18):
        x1 = account(r18, AccountingPolicy(name="a", activation_copies=1.0))
        x2 = account(r18, AccountingPolicy(name="b", activation_copies=2.0))
        assert x2.act_bytes_per_sample == pytest.approx(2 * x1.act_bytes_per_sample, abs=2)

    def test_buffers_optional(self, r18):
        w = account(r18, AccountingPolicy(name="a", count_buffers=True))
        wo = account(r18, AccountingPolicy(name="b", count_buffers=False))
        assert w.fixed_bytes - wo.fixed_bytes == w.buffer_bytes
        assert wo.buffer_bytes == 0

    def test_small_model_consistency(self):
        g = simple_cnn(image_size=16)
        acct = account(g)
        assert acct.weight_bytes == g.trainable_bytes
        assert acct.act_bytes_per_sample == g.activation_bytes_per_sample()
