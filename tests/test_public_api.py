"""Public-API smoke coverage: names exported but not directly exercised
elsewhere (convenience builders, presets, low-level helpers)."""

import numpy as np
import pytest

import repro
from repro.autodiff.ops import im2col_indices, pad_nchw
from repro.edge import (
    DEVICE_CATALOG,
    JETSON_NANO,
    RASPBERRY_PI_3,
    RASPBERRY_PI_4,
)
from repro.memory import (
    OPTIMIZER_WEIGHT_COPIES,
    PAPER_DEVICE_BUDGET_MB,
    PAPER_IMAGE_SIZES_T2,
)
from repro.units import FLOAT16_BYTES, FLOAT32_BYTES, FLOAT64_BYTES, MB
from repro.zoo import resnet34, resnet101, resnet152


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_subpackages_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None or name == "__version__"


class TestZooConvenience:
    @pytest.mark.parametrize(
        "builder,params",
        [(resnet34, 21_797_672), (resnet101, 44_549_160), (resnet152, 60_192_808)],
    )
    def test_builders_match_build_resnet(self, builder, params):
        g = builder(image_size=64)
        assert g.trainable_numel == params


class TestDevicePresets:
    def test_catalog_complete(self):
        for dev in (RASPBERRY_PI_3, RASPBERRY_PI_4, JETSON_NANO):
            assert DEVICE_CATALOG[dev.name] is dev

    def test_jetson_gpu_dominates(self):
        assert JETSON_NANO.flops_per_s == JETSON_NANO.gpu_gflops * 1e9

    def test_pi3_smallest_memory(self):
        assert RASPBERRY_PI_3.mem_bytes == min(d.mem_bytes for d in DEVICE_CATALOG.values())


class TestLowLevelOps:
    def test_pad_nchw(self):
        x = np.ones((1, 1, 2, 2))
        padded = pad_nchw(x, 1)
        assert padded.shape == (1, 1, 4, 4)
        assert padded.sum() == 4  # original mass preserved
        assert pad_nchw(x, 0) is x  # no copy when padding is zero

    def test_im2col_indices_shapes(self):
        rows, cols, oh, ow = im2col_indices(5, 5, 3, 3, 1, 0)
        assert (oh, ow) == (3, 3)
        assert rows.shape == (9, 9)
        assert cols.shape == (9, 9)
        assert rows.max() == 4  # stays inside the (unpadded) input

    def test_im2col_indices_with_padding(self):
        rows, cols, oh, ow = im2col_indices(4, 4, 3, 3, 1, 1)
        assert (oh, ow) == (4, 4)


class TestConstants:
    def test_float_widths(self):
        assert (FLOAT16_BYTES, FLOAT32_BYTES, FLOAT64_BYTES) == (2, 4, 8)

    def test_optimizer_copies_map(self):
        assert OPTIMIZER_WEIGHT_COPIES["none"] == 1
        assert OPTIMIZER_WEIGHT_COPIES["adam"] == 4

    def test_paper_constants(self):
        assert PAPER_DEVICE_BUDGET_MB == 2048.0
        assert PAPER_IMAGE_SIZES_T2 == (224, 350, 500, 650, 1100, 1500)
