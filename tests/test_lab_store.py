"""Content-addressed store and cache invalidation semantics."""

import json

import pytest

from repro import lab
from repro.errors import ArtifactError

import repro.experiments  # noqa: F401


def _ascii(doc):
    return f"v={doc['v']}\n"


@pytest.fixture
def spec_pair():
    """Two cheap registered specs with controllable fingerprints."""
    def make(name, fingerprint):
        return lab.ExperimentSpec(
            name=name,
            title=name,
            compute=lambda params, inputs: {"v": params["x"] * 2},
            renderers={"ascii": _ascii},
            params=(lab.Param("x", int, default=1),),
            default_units=(lab.UnitDef({}, ((f"{name}.txt", "ascii"),)),),
            code_fingerprint=fingerprint,
        )

    a = lab.register(make("t_store_a", "a" * 64))
    b = lab.register(make("t_store_b", "b" * 64))
    yield a, b
    lab.unregister("t_store_a")
    lab.unregister("t_store_b")


class TestStore:
    def test_payload_roundtrip(self, tmp_path):
        store = lab.ArtifactStore(tmp_path)
        store.save_payload("k" * 64, "s", {"x": 1}, {"v": [1, 2]})
        assert store.has_payload("k" * 64)
        assert store.load_payload("k" * 64) == {"v": [1, 2]}

    def test_missing_payload_is_typed(self, tmp_path):
        with pytest.raises(ArtifactError):
            lab.ArtifactStore(tmp_path).load_payload("0" * 64)

    def test_malformed_payload_is_typed(self, tmp_path):
        store = lab.ArtifactStore(tmp_path)
        store.save_payload("k" * 64, "s", {}, {"v": 1})
        store.cache_path("k" * 64).write_text("{not json")
        with pytest.raises(ArtifactError):
            store.load_payload("k" * 64)

    def test_integrity_check_catches_tamper(self, tmp_path):
        store = lab.ArtifactStore(tmp_path)
        path = store.save_payload("k" * 64, "s", {}, {"v": 1})
        doc = json.loads(path.read_text())
        doc["payload"]["v"] = 999
        path.write_text(json.dumps(doc))
        with pytest.raises(ArtifactError):
            store.load_payload("k" * 64)

    def test_wrong_key_is_typed(self, tmp_path):
        store = lab.ArtifactStore(tmp_path)
        src = store.save_payload("k" * 64, "s", {}, {"v": 1})
        store.cache_path("j" * 64).parent.mkdir(parents=True, exist_ok=True)
        store.cache_path("j" * 64).write_text(src.read_text())
        with pytest.raises(ArtifactError):
            store.load_payload("j" * 64)

    def test_artifact_write_skips_identical(self, tmp_path):
        store = lab.ArtifactStore(tmp_path)
        _, changed1 = store.write_artifact("a.txt", "hello\n")
        _, changed2 = store.write_artifact("a.txt", "hello\n")
        _, changed3 = store.write_artifact("a.txt", "bye\n")
        assert (changed1, changed2, changed3) == (True, False, True)

    def test_no_tmp_files_left(self, tmp_path):
        store = lab.ArtifactStore(tmp_path)
        store.save_payload("k" * 64, "s", {}, {"v": 1})
        store.write_artifact("a.txt", "x\n")
        store.write_manifest("a", {"k": 1})
        assert not list(tmp_path.rglob("*.tmp"))


class TestCacheSemantics:
    def test_second_run_hits(self, tmp_path, spec_pair):
        store = lab.ArtifactStore(tmp_path)
        units = lab.default_units(["t_store_a"])
        assert lab.run_units(units, store).misses == 1
        report = lab.run_units(units, store)
        assert (report.hits, report.misses) == (1, 0)

    def test_param_change_is_miss_elsewhere(self, tmp_path, spec_pair):
        store = lab.ArtifactStore(tmp_path)
        lab.run_units([lab.Unit("t_store_a", {"x": 1})], store)
        report = lab.run_units(
            [lab.Unit("t_store_a", {"x": 1}), lab.Unit("t_store_a", {"x": 2})], store
        )
        assert (report.hits, report.misses) == (1, 1)

    def test_fingerprint_change_invalidates_only_that_spec(self, tmp_path, spec_pair):
        a, b = spec_pair
        store = lab.ArtifactStore(tmp_path)
        units = lab.default_units(["t_store_a", "t_store_b"])
        assert lab.run_units(units, store).misses == 2

        lab.unregister("t_store_a")
        patched = lab.ExperimentSpec(
            name=a.name, title=a.title, compute=a.compute,
            renderers=a.renderers, params=a.params,
            default_units=a.default_units, code_fingerprint="c" * 64,
        )
        lab.register(patched)
        report = lab.run_units(lab.default_units(["t_store_a", "t_store_b"]), store)
        by_spec = {o.spec: o.status for o in report.outcomes}
        assert by_spec == {"t_store_a": "miss", "t_store_b": "hit"}

    def test_corrupted_payload_recomputes(self, tmp_path, spec_pair):
        store = lab.ArtifactStore(tmp_path)
        units = lab.default_units(["t_store_a", "t_store_b"])
        first = lab.run_units(units, store)
        store.cache_path(first.outcomes[0].key).write_text("garbage")
        report = lab.run_units(units, store)
        by_spec = {o.spec: o.status for o in report.outcomes}
        assert by_spec == {"t_store_a": "corrupt", "t_store_b": "hit"}
        # and the recompute healed the cache
        assert lab.run_units(units, store).hits == 2

    def test_tampered_artifact_rerenders_without_recompute(self, tmp_path, spec_pair):
        store = lab.ArtifactStore(tmp_path)
        units = lab.default_units(["t_store_a"])
        lab.run_units(units, store)
        store.artifact_path("t_store_a.txt").write_text("vandalized\n")
        report = lab.run_units(units, store)
        assert (report.hits, report.computed) == (1, 0)
        assert store.artifact_path("t_store_a.txt").read_text() == "v=2\n"

    def test_force_recomputes_everything(self, tmp_path, spec_pair):
        store = lab.ArtifactStore(tmp_path)
        units = lab.default_units(["t_store_a", "t_store_b"])
        lab.run_units(units, store)
        report = lab.run_units(units, store, force=True)
        assert (report.hits, report.misses) == (0, 2)

    def test_store_none_always_computes(self, spec_pair):
        report = lab.run_units([lab.Unit("t_store_a", {"x": 3})])
        assert report.misses == 1
        assert report.outcomes[0].written == ()
