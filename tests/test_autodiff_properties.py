"""Property-based tests: any valid schedule trains any chain exactly."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autodiff import BatchNormLayer, DenseLayer, ReLULayer, SequentialNet, run_schedule
from repro.checkpointing import (
    revolve_schedule,
    sqrt_schedule,
    store_all_schedule,
    uniform_schedule,
)


def build_chain(depth, width, classes, seed, with_bn):
    rng = np.random.default_rng(seed)
    layers = []
    for i in range(depth - 1):
        kind = i % (3 if with_bn else 2)
        if kind == 0:
            layers.append(DenseLayer(width, width, rng, name=f"fc{i}"))
        elif kind == 1:
            layers.append(ReLULayer(name=f"relu{i}"))
        else:
            layers.append(BatchNormLayer(width, name=f"bn{i}"))
    layers.append(DenseLayer(width, classes, rng, name="head"))
    return SequentialNet(layers), rng


@given(
    depth=st.integers(2, 14),
    slots=st.integers(1, 6),
    batch=st.integers(2, 9),
    seed=st.integers(0, 10_000),
    with_bn=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_revolve_gradients_equal_store_all(depth, slots, batch, seed, with_bn):
    """For arbitrary chains/slots/batches: loss and every gradient from
    the Revolve-driven executor equal the store-all reference exactly."""
    net, rng = build_chain(depth, 8, 3, seed, with_bn)
    x = rng.normal(size=(batch, 8))
    y = rng.integers(0, 3, size=batch)
    loss_ref, grads_ref, _ = net.train_step(x, y)
    res = run_schedule(net, revolve_schedule(depth, slots), x, y)
    assert res.loss == loss_ref
    for k in grads_ref:
        assert np.array_equal(res.grads[k], grads_ref[k])


@given(
    depth=st.integers(2, 14),
    segments=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_uniform_gradients_equal_store_all(depth, segments, seed):
    segments = min(segments, depth)
    net, rng = build_chain(depth, 6, 3, seed, with_bn=False)
    x = rng.normal(size=(4, 6))
    y = rng.integers(0, 3, size=4)
    loss_ref, grads_ref, _ = net.train_step(x, y)
    res = run_schedule(net, uniform_schedule(depth, segments), x, y)
    assert res.loss == loss_ref
    for k in grads_ref:
        assert np.array_equal(res.grads[k], grads_ref[k])


@given(depth=st.integers(2, 16), seed=st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_all_strategies_agree_with_each_other(depth, seed):
    """Revolve, sqrt and store-all produce identical gradient maps."""
    net, rng = build_chain(depth, 5, 2, seed, with_bn=False)
    x = rng.normal(size=(3, 5))
    y = rng.integers(0, 2, size=3)
    results = [
        run_schedule(net, sch, x, y)
        for sch in (
            revolve_schedule(depth, 2),
            sqrt_schedule(depth),
            store_all_schedule(depth),
        )
    ]
    base = results[0]
    for other in results[1:]:
        assert other.loss == base.loss
        for k in base.grads:
            assert np.array_equal(other.grads[k], base.grads[k])


@given(depth=st.integers(3, 12), seed=st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_peak_bytes_dominated_by_store_all(depth, seed):
    """A 1-slot Revolve run never holds more live bytes than store-all."""
    net, rng = build_chain(depth, 16, 3, seed, with_bn=False)
    x = rng.normal(size=(8, 16))
    y = rng.integers(0, 3, size=8)
    lean = run_schedule(net, revolve_schedule(depth, 1), x, y)
    fat = run_schedule(net, store_all_schedule(depth), x, y)
    assert lean.peak_bytes <= fat.peak_bytes
