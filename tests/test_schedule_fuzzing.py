"""Failure injection: corrupted schedules must fail loudly, never
silently compute wrong gradients.

Strategy: take a known-correct Revolve schedule, mutate it (drop an
action, duplicate one, swap two, retarget a slot), then require that
either (a) the simulator/executor rejects it, or (b) — if the mutation
happened to leave a valid schedule — the executor's gradients are still
bit-identical to store-all.  There is no third outcome.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import DenseLayer, SequentialNet, run_schedule
from repro.checkpointing import Schedule, revolve_schedule, simulate
from repro.checkpointing.actions import Action, ActionKind
from repro.errors import ExecutionError, ReproError, ScheduleError


def mutate(actions: tuple[Action, ...], kind: int, pos: int, slot: int) -> tuple[Action, ...]:
    acts = list(actions)
    pos %= len(acts)
    if kind == 0:  # drop
        del acts[pos]
    elif kind == 1:  # duplicate
        acts.insert(pos, acts[pos])
    elif kind == 2:  # swap adjacent
        if pos + 1 < len(acts):
            acts[pos], acts[pos + 1] = acts[pos + 1], acts[pos]
    elif kind == 3:  # retarget slot/arg
        a = acts[pos]
        acts[pos] = Action(a.kind, max(0, (a.arg + 1 + slot) % (len(actions) + 2)))
    return tuple(acts)


def build_net(depth: int) -> tuple[SequentialNet, np.ndarray, np.ndarray]:
    rng = np.random.default_rng(0)
    layers = [DenseLayer(5, 5, rng, name=f"f{i}") for i in range(depth - 1)]
    layers.append(DenseLayer(5, 2, rng, name="head"))
    net = SequentialNet(layers)
    return net, rng.normal(size=(3, 5)), rng.integers(0, 2, size=3)


@given(
    l=st.integers(2, 10),
    c=st.integers(1, 4),
    kind=st.integers(0, 3),
    pos=st.integers(0, 200),
    slot=st.integers(0, 5),
)
@settings(max_examples=120, deadline=None)
def test_simulator_mutation_soundness(l, c, kind, pos, slot):
    """Mutated schedules either raise or still satisfy all invariants."""
    good = revolve_schedule(l, c)
    mutated = Schedule(
        strategy="mutated",
        length=l,
        slots=good.slots + 8,  # keep slot budget from masking arg errors
        actions=mutate(good.actions, kind, pos, slot),
    )
    try:
        stats = simulate(mutated)
    except ReproError:
        return  # rejected: correct behaviour
    # Accepted: then all backwards ran in order and every step executed.
    assert stats.replay_steps == l
    assert all(e >= 1 for e in stats.executions)


@given(
    l=st.integers(2, 8),
    c=st.integers(1, 3),
    kind=st.integers(0, 3),
    pos=st.integers(0, 100),
    slot=st.integers(0, 4),
)
@settings(max_examples=60, deadline=None)
def test_executor_mutation_soundness(l, c, kind, pos, slot):
    """On real tensors: rejected, or gradients identical to store-all."""
    net, x, y = build_net(l)
    good = revolve_schedule(l, c)
    mutated = Schedule(
        strategy="mutated",
        length=l,
        slots=good.slots + 8,
        actions=mutate(good.actions, kind, pos, slot),
    )
    loss_ref, grads_ref, _ = net.train_step(x, y)
    try:
        res = run_schedule(net, mutated, x, y)
    except (ExecutionError, ScheduleError, KeyError, IndexError):
        return
    assert res.loss == loss_ref
    for k in grads_ref:
        assert np.array_equal(res.grads[k], grads_ref[k])


def test_truncated_schedule_always_rejected():
    """Cutting the tail off always leaves pending backwards -> rejected."""
    good = revolve_schedule(6, 2)
    for cut in range(1, len(good.actions)):
        truncated = Schedule(
            strategy="cut", length=6, slots=good.slots, actions=good.actions[:cut]
        )
        with pytest.raises(ExecutionError):
            simulate(truncated)


def test_reordered_adjoints_rejected():
    """Reversing the adjoint order violates the backward dependency."""
    good = revolve_schedule(4, 3)
    adjoints = [a for a in good.actions if a.kind is ActionKind.ADJOINT]
    swapped = []
    it = iter(reversed(adjoints))
    for a in good.actions:
        swapped.append(next(it) if a.kind is ActionKind.ADJOINT else a)
    bad = Schedule(strategy="re", length=4, slots=good.slots, actions=tuple(swapped))
    with pytest.raises(ExecutionError):
        simulate(bad)
