"""Cross-cutting edge cases not covered by the per-module suites."""

import numpy as np
import pytest

from repro.autodiff.ops import maxpool2d_backward, maxpool2d_forward
from repro.checkpointing import (
    ActionKind,
    Schedule,
    adjoint,
    memory_curve,
    restore,
    revolve_schedule,
    snapshot,
)
from repro.edge import ODROID_XU4, TrainingWorkload, estimate_epoch
from repro.errors import GraphError
from repro.experiments import default_rhos
from repro.graph import Add, Graph, Identity, TensorSpec, linearize
from repro.units import MB


class TestMaxPoolStridePath:
    """The im2col fallback when the window does not tile the input."""

    def test_overlapping_windows_match_naive(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6))
        out, arg = maxpool2d_forward(x, k=3, stride=2)
        assert out.shape == (2, 3, 2, 2)
        for n in range(2):
            for c in range(3):
                for i in range(2):
                    for j in range(2):
                        window = x[n, c, 2 * i : 2 * i + 3, 2 * j : 2 * j + 3]
                        assert out[n, c, i, j] == window.max()

    def test_overlapping_backward_scatter(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 1, 5, 5))
        out, arg = maxpool2d_forward(x, k=3, stride=2)
        dy = np.ones_like(out)
        dx = maxpool2d_backward(x.shape, arg, dy, k=3, stride=2)
        # Total gradient mass is conserved.
        assert dx.sum() == pytest.approx(dy.sum())


class TestScheduleIteration:
    def test_iter_yields_actions(self):
        sch = Schedule(
            strategy="s", length=1, slots=1,
            actions=(snapshot(0), restore(0), adjoint(1)),
        )
        kinds = [a.kind for a in sch]
        assert kinds == [ActionKind.SNAPSHOT, ActionKind.RESTORE, ActionKind.ADJOINT]

    def test_count_by_kind(self):
        sch = revolve_schedule(10, 3)
        total = sum(sch.count(k) for k in ActionKind)
        assert total == len(sch)


class TestFigure1Grid:
    def test_default_rhos_validation(self):
        with pytest.raises(ValueError):
            default_rhos(n=1)

    def test_custom_range(self):
        rhos = default_rhos(n=5, lo=1.0, hi=2.0)
        assert rhos == (1.0, 1.25, 1.5, 1.75, 2.0)

    def test_memory_curve_respects_bwd_ratio(self):
        # Heavier backward -> recompute is cheaper in rho terms -> fewer
        # slots needed at the same rho -> less memory.
        a = memory_curve(50, 0.0, 1.0, [1.2], bwd_ratio=1.0)[0]
        b = memory_curve(50, 0.0, 1.0, [1.2], bwd_ratio=2.0)[0]
        assert b.slots <= a.slots


class TestLinearizeMultiInput:
    def test_two_sources_rejected(self):
        g = Graph("two_in")
        a = g.add_input("a", TensorSpec((4,)))
        b = g.add_input("b", TensorSpec((4,)))
        g.add("merge", Add(), [a, b])
        with pytest.raises(GraphError):
            linearize(g)

    def test_single_node_graph(self):
        g = Graph("solo")
        src = g.add_input("in", TensorSpec((4,)))
        g.add("id", Identity(), [src])
        chain = linearize(g)
        assert chain.length == 1


class TestEpochEstimateKnobs:
    def workload(self):
        return TrainingWorkload(
            model="m",
            chain_length=18,
            slot_act_bytes_per_sample=MB,
            fixed_bytes=100 * MB,
            flops_per_sample=1e9,
            n_images=1000,
            batch_size=4,
        )

    def test_floor_raises_small_batch_speed(self):
        low = estimate_epoch(self.workload(), ODROID_XU4, floor=0.1)
        high = estimate_epoch(self.workload(), ODROID_XU4, floor=0.9)
        assert high.step_seconds < low.step_seconds

    def test_full_at_changes_saturation(self):
        early = estimate_epoch(self.workload(), ODROID_XU4, full_at=4)
        late = estimate_epoch(self.workload(), ODROID_XU4, full_at=64)
        assert early.efficiency >= late.efficiency
