"""Schedule-driven backprop: gradients identical to store-all, always."""

import numpy as np
import pytest

from repro.autodiff import (
    DenseLayer,
    ReLULayer,
    SequentialNet,
    run_schedule,
)
from repro.checkpointing import (
    Schedule,
    adjoint,
    advance,
    hetero_schedule,
    revolve_schedule,
    snapshot,
    sqrt_schedule,
    store_all_schedule,
    uniform_schedule,
    ChainSpec,
)
from repro.errors import ExecutionError, ShapeError


def dense_chain(depth, width, rng):
    layers = []
    for i in range(depth - 1):
        layers.append(DenseLayer(width, width, rng, name=f"fc{i}"))
    layers.append(DenseLayer(width, 3, rng, name="head"))
    return SequentialNet(layers, name="chain")


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestGradientEquivalence:
    @pytest.mark.parametrize("make", [
        lambda l: revolve_schedule(l, 1),
        lambda l: revolve_schedule(l, 2),
        lambda l: revolve_schedule(l, 4),
        lambda l: uniform_schedule(l, 3),
        lambda l: sqrt_schedule(l),
        lambda l: store_all_schedule(l),
    ])
    def test_identical_to_store_all(self, rng, make, small_cnn=None):
        net = dense_chain(9, 10, rng)
        x = rng.normal(size=(6, 10))
        y = rng.integers(0, 3, size=6)
        loss_ref, grads_ref, _ = net.train_step(x, y)
        res = run_schedule(net, make(len(net)), x, y)
        assert res.loss == loss_ref  # bit-identical, same op order
        assert set(res.grads) == set(grads_ref)
        for k in grads_ref:
            assert np.array_equal(res.grads[k], grads_ref[k]), k

    def test_cnn_equivalence(self, rng, small_cnn, small_batch):
        x, y = small_batch
        loss_ref, grads_ref, _ = small_cnn.train_step(x, y)
        res = run_schedule(small_cnn, revolve_schedule(len(small_cnn), 3), x, y)
        assert res.loss == pytest.approx(loss_ref, rel=1e-15)
        for k in grads_ref:
            assert np.allclose(res.grads[k], grads_ref[k], rtol=1e-14, atol=1e-14)

    def test_hetero_schedule_on_real_net(self, rng, small_cnn, small_batch):
        x, y = small_batch
        sizes = small_cnn.activation_bytes(x)
        spec = ChainSpec(
            name="cnn",
            act_bytes=tuple(sizes),
            fwd_cost=(1.0,) * len(small_cnn),
            bwd_cost=(1.0,) * len(small_cnn),
        )
        sch = hetero_schedule(spec, 3)
        res = run_schedule(small_cnn, sch, x, y)
        loss_ref, grads_ref, _ = small_cnn.train_step(x, y)
        assert res.loss == pytest.approx(loss_ref, rel=1e-15)
        for k in grads_ref:
            assert np.allclose(res.grads[k], grads_ref[k], rtol=1e-14, atol=1e-14)


class TestMemoryBehaviour:
    def test_fewer_slots_lower_peak(self, rng):
        """On a homogeneous chain, peak live bytes fall with slot count."""
        net = dense_chain(16, 64, rng)
        x = rng.normal(size=(32, 64))
        y = rng.integers(0, 3, size=32)
        peaks = []
        for c in (15, 8, 4, 2, 1):
            res = run_schedule(net, revolve_schedule(len(net), c), x, y)
            peaks.append(res.peak_bytes)
        assert peaks == sorted(peaks, reverse=True)

    def test_forward_steps_match_simulator_cost(self, rng):
        from repro.checkpointing import opt_forwards, simulate

        net = dense_chain(10, 8, rng)
        x = rng.normal(size=(4, 8))
        y = rng.integers(0, 3, size=4)
        sch = revolve_schedule(len(net), 3)
        res = run_schedule(net, sch, x, y)
        assert res.forward_steps == opt_forwards(len(net), sch.slots)
        assert res.replay_steps == len(net)

    def test_peak_slot_bytes_bounded_by_budget_dp(self, rng):
        from repro.checkpointing import budget_schedule

        net = dense_chain(8, 12, rng)
        x = rng.normal(size=(4, 12))
        y = rng.integers(0, 3, size=4)
        sizes = net.activation_bytes(x)
        spec = ChainSpec(
            name="c",
            act_bytes=tuple(sizes),
            fwd_cost=(1.0,) * 8,
            bwd_cost=(1.0,) * 8,
        )
        budget = sizes[0] + 2 * max(sizes)
        sch = budget_schedule(spec, budget, levels=32)
        res = run_schedule(net, sch, x, y)
        assert res.peak_slot_bytes <= budget


class TestRejections:
    def test_length_mismatch(self, rng):
        net = dense_chain(4, 8, rng)
        sch = revolve_schedule(5, 2)
        with pytest.raises(ExecutionError):
            run_schedule(net, sch, rng.normal(size=(2, 8)), np.array([0, 1]))

    def test_malformed_schedule_rejected(self, rng):
        net = dense_chain(2, 8, rng)
        bad = Schedule(
            strategy="bad", length=2, slots=1,
            actions=(snapshot(0), advance(1), adjoint(1)),  # wrong order
        )
        with pytest.raises(ExecutionError):
            run_schedule(net, bad, rng.normal(size=(2, 8)), np.array([0, 1]))

    def test_incomplete_schedule_rejected(self, rng):
        net = dense_chain(2, 8, rng)
        partial = Schedule(
            strategy="bad", length=2, slots=1,
            actions=(snapshot(0), advance(1), adjoint(2)),
        )
        with pytest.raises(ExecutionError):
            run_schedule(net, partial, rng.normal(size=(2, 8)), np.array([0, 1]))

    def test_unique_layer_names_required(self, rng):
        with pytest.raises(ShapeError):
            SequentialNet([ReLULayer("a"), ReLULayer("a")])
