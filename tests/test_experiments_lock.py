"""Regression locks for the numbers documented in EXPERIMENTS.md.

If a refactor changes any headline value, these tests fail and the docs
must be updated in the same change — documented claims can never drift
from what the code produces.
"""

import pytest

from repro.checkpointing import (
    disk_revolve_cost,
    opt_forwards,
    uniform_memory_slots,
)
from repro.experiments import figure1_panel
from repro.memory import fit_paper_coefficients
from repro.units import GB, MB


class TestFigure1FitRhoTable:
    """The E5-E8 table (paper coefficients, default conventions)."""

    EXPECTED = {
        "a": {18: 1.0, 34: 1.0, 50: 1.0, 101: 1.0, 152: 1.0},
        "b": {18: 1.0, 34: 1.0, 50: 1.10, 101: 1.30, 152: 1.40},
        "c": {18: 1.0, 34: 1.0, 50: 1.0, 101: 1.15, 152: 1.30},
        "d": {18: 1.10, 34: 1.25, 50: 1.60, 101: 1.75, 152: 2.00},
    }

    @pytest.mark.parametrize("panel", sorted(EXPECTED))
    def test_fit_rhos(self, panel):
        measured = {
            s.depth: s.min_rho_under(2 * GB) for s in figure1_panel(panel, "paper")
        }
        for depth, expected in self.EXPECTED[panel].items():
            assert measured[depth] == pytest.approx(expected, abs=1e-9), (panel, depth)


class TestCoefficientLock:
    """E1: the Table-I fit (MB)."""

    EXPECTED = {
        18: (175.05, 55.00),
        34: (329.29, 83.71),
        50: (384.85, 235.42),
        101: (674.65, 352.56),
        152: (913.36, 497.26),
    }

    @pytest.mark.parametrize("depth", sorted(EXPECTED))
    def test_fixed_and_slope(self, depth):
        cal = fit_paper_coefficients(depth)
        fixed_mb, act_mb = self.EXPECTED[depth]
        assert cal.fixed_bytes / MB == pytest.approx(fixed_mb, abs=0.05)
        assert cal.act224_bytes / MB == pytest.approx(act_mb, abs=0.05)


class TestSection5Lock:
    """E4: best-s slot minima and the uniform formula's anchor values."""

    BEST = {18: 8, 34: 13, 50: 14, 101: 20, 152: 26}

    @pytest.mark.parametrize("l", sorted(BEST))
    def test_best_slots(self, l):
        best = min(uniform_memory_slots(l, s) for s in range(1, l + 1))
        assert best == self.BEST[l]


class TestDiskRevolveLock:
    """E14: the headline two-tier numbers."""

    def test_152_with_3_slots(self):
        assert opt_forwards(152, 3) == 886
        assert disk_revolve_cost(152, 3, 1.0, 1.0) == pytest.approx(336.0)

    def test_free_and_expensive_limits(self):
        assert disk_revolve_cost(152, 3, 0.0, 0.0) == 151.0
        assert disk_revolve_cost(152, 3, 1e9, 1e9) == 886.0


class TestRevolveAnchors:
    """Closed-form anchor values quoted across the docs."""

    def test_quadratic_single_slot(self):
        assert opt_forwards(10, 1) == 45

    def test_sweep_at_full_slots(self):
        assert opt_forwards(50, 49) == 49

    def test_known_mid_value(self):
        # P(152, 5): quoted indirectly via extra(152,5)=399 in tests.
        assert opt_forwards(152, 5) - 151 == 399
