"""The schedule-aware Trainer."""

import numpy as np
import pytest

from repro.autodiff import (
    DenseLayer,
    DropoutLayer,
    Momentum,
    ReLULayer,
    SequentialNet,
    Trainer,
    TrainerConfig,
    gaussian_blobs,
)
from repro.checkpointing import resolve_strategy_name, revolve_schedule
from repro.errors import MemoryBudgetError


def make_net(rng, depth=6, width=12, classes=3, dropout=False):
    layers = []
    prev = 6
    for i in range(depth - 1):
        layers.append(DenseLayer(prev, width, rng, name=f"fc{i}"))
        if dropout and i == 1:
            layers.append(DropoutLayer(0.2, seed=4, name="drop"))
        layers.append(ReLULayer(name=f"r{i}"))
        prev = width
    layers.append(DenseLayer(prev, classes, rng, name="head"))
    return SequentialNet(layers)


@pytest.fixture
def rng():
    return np.random.default_rng(2)


@pytest.fixture
def data(rng):
    return gaussian_blobs(40, 3, 6, rng, spread=0.6, separation=6.0)


class TestStrategies:
    def test_store_all_default(self, rng, data):
        net = make_net(rng)
        t = Trainer(net, Momentum(net.layers, lr=0.02), TrainerConfig(epochs=5))
        t.fit(data)
        assert t.schedule_strategy == "store_all"
        assert t.evaluate(data) > 0.9

    def test_rho_target_resolves_to_revolve(self, rng, data):
        net = make_net(rng)
        t = Trainer(net, Momentum(net.layers, lr=0.02), TrainerConfig(epochs=3, rho=1.5))
        t.fit(data)
        assert t.schedule_strategy == "revolve"

    def test_explicit_schedule_wins(self, rng, data):
        net = make_net(rng)
        sch = revolve_schedule(len(net), 1)
        t = Trainer(
            net, Momentum(net.layers, lr=0.02), TrainerConfig(epochs=2, rho=1.1, schedule=sch)
        )
        t.fit(data)
        assert t._schedule is sch

    def test_activation_budget_resolves(self, rng, data):
        net = make_net(rng)
        sizes = net.activation_bytes(data.x[:16])
        budget = 4 * max(sizes)
        t = Trainer(
            net,
            Momentum(net.layers, lr=0.02),
            TrainerConfig(epochs=2, activation_budget_bytes=budget),
        )
        t.fit(data)
        assert t.schedule_strategy == "revolve"
        assert t.peak_bytes > 0

    def test_hopeless_budget_raises(self, rng, data):
        net = make_net(rng)
        t = Trainer(
            net,
            Momentum(net.layers, lr=0.02),
            TrainerConfig(epochs=1, activation_budget_bytes=8),
        )
        with pytest.raises(MemoryBudgetError):
            t.fit(data)

    def test_any_registered_strategy_name(self, rng, data):
        """The trainer builds schedules through the registry: every
        homogeneous-chain family trains to the same losses as store-all
        (the executor guarantees gradient equivalence)."""
        reference = None
        for name in ("revolve", "uniform", "sqrt", "store_all", "hetero", "budget"):
            net = make_net(np.random.default_rng(11))
            t = Trainer(
                net,
                Momentum(net.layers, lr=0.02),
                TrainerConfig(epochs=2, strategy=name),
            )
            t.fit(data)
            assert resolve_strategy_name(t.schedule_strategy) == name
            losses = [r.mean_loss for r in t.history]
            if reference is None:
                reference = losses
            else:
                assert losses == pytest.approx(reference)

    def test_strategy_with_explicit_slots(self, rng, data):
        net = make_net(rng)
        t = Trainer(
            net,
            Momentum(net.layers, lr=0.02),
            TrainerConfig(epochs=1, strategy="uniform", slots=7),
        )
        t.fit(data)
        assert t.schedule_strategy.startswith("uniform")
        assert t._schedule.snapshot_count > 0

    def test_unknown_strategy_fails_fast(self):
        with pytest.raises(Exception, match="unknown strategy"):
            TrainerConfig(strategy="nope")

    def test_infeasible_strategy_raises_budget_error(self, rng, data):
        net = make_net(rng)
        t = Trainer(
            net,
            Momentum(net.layers, lr=0.02),
            TrainerConfig(epochs=1, strategy="store_all", slots=1),
        )
        with pytest.raises(MemoryBudgetError):
            t.fit(data)


class TestEquivalence:
    def test_checkpointed_history_identical_to_store_all(self, rng, data):
        a_net = make_net(np.random.default_rng(7))
        b_net = make_net(np.random.default_rng(7))
        a = Trainer(a_net, Momentum(a_net.layers, lr=0.02), TrainerConfig(epochs=4))
        b = Trainer(b_net, Momentum(b_net.layers, lr=0.02), TrainerConfig(epochs=4, rho=2.0))
        a.fit(data)
        b.fit(data)
        assert [r.mean_loss for r in a.history] == pytest.approx(
            [r.mean_loss for r in b.history], rel=1e-12
        )

    def test_checkpointed_peak_not_higher(self, rng, data):
        a_net = make_net(np.random.default_rng(7), depth=10, width=64)
        b_net = make_net(np.random.default_rng(7), depth=10, width=64)
        full = Trainer(
            a_net, Momentum(a_net.layers, lr=0.02),
            TrainerConfig(epochs=1, schedule=revolve_schedule(len(a_net), len(a_net) - 1)),
        )
        lean = Trainer(
            b_net, Momentum(b_net.layers, lr=0.02),
            TrainerConfig(epochs=1, schedule=revolve_schedule(len(b_net), 1)),
        )
        full.fit(data)
        lean.fit(data)
        assert lean.peak_bytes <= full.peak_bytes

    def test_dropout_steps_bumped(self, rng, data):
        net = make_net(rng, dropout=True)
        drop = next(l for l in net.layers if isinstance(l, DropoutLayer))
        t = Trainer(net, Momentum(net.layers, lr=0.02), TrainerConfig(epochs=2))
        t.fit(data)
        assert drop._step > 0


class TestGradientAccumulation:
    def test_accumulated_equals_full_batch(self, rng, data):
        """n_i/N-weighted micro-batch gradients reproduce the full-batch
        step (up to float summation order)."""
        a_net = make_net(np.random.default_rng(9))
        b_net = make_net(np.random.default_rng(9))
        full = Trainer(a_net, Momentum(a_net.layers, lr=0.02), TrainerConfig(epochs=3))
        accum = Trainer(
            b_net,
            Momentum(b_net.layers, lr=0.02),
            TrainerConfig(epochs=3, micro_batch_size=4),
        )
        full.fit(data)
        accum.fit(data)
        assert [r.mean_loss for r in accum.history] == pytest.approx(
            [r.mean_loss for r in full.history], rel=1e-9
        )
        for (la, pa), (lb, pb) in zip(
            ((l.name, p) for l in a_net.layers for p in l.params),
            ((l.name, p) for l in b_net.layers for p in l.params),
        ):
            assert np.allclose(
                a_net.layers[0].params["W"], b_net.layers[0].params["W"], rtol=1e-9
            )
            break

    def test_micro_batches_cut_peak_memory(self, rng, data):
        net = make_net(rng, depth=8, width=64)
        full = Trainer(net, Momentum(net.layers, lr=0.02), TrainerConfig(epochs=1, batch_size=32))
        full.fit(data)
        net2 = make_net(rng, depth=8, width=64)
        micro = Trainer(
            net2,
            Momentum(net2.layers, lr=0.02),
            TrainerConfig(epochs=1, batch_size=32, micro_batch_size=4),
        )
        micro.fit(data)
        assert micro.peak_bytes < full.peak_bytes

    def test_composes_with_checkpointing(self, rng, data):
        """Micro-batching + Revolve: both levers applied together."""
        net = make_net(rng, depth=8, width=32)
        t = Trainer(
            net,
            Momentum(net.layers, lr=0.02),
            TrainerConfig(epochs=2, micro_batch_size=4, rho=1.5),
        )
        t.fit(data)
        assert t.schedule_strategy == "revolve"
        assert t.evaluate(data) > 0.5

    def test_batchnorm_breaks_exactness_but_checkpointing_does_not(self, rng, data):
        """The documented caveat: per-micro-batch BN statistics make
        accumulation inexact, while checkpointing stays bit-exact."""
        from repro.autodiff import BatchNormLayer, SequentialNet

        def bn_net(seed):
            r = np.random.default_rng(seed)
            return SequentialNet(
                [
                    DenseLayer(6, 16, r, name="fc0"),
                    BatchNormLayer(16, name="bn"),
                    ReLULayer("r0"),
                    DenseLayer(16, 3, r, name="head"),
                ]
            )

        x, y = data.x[:32], data.y[:32]
        ref_net = bn_net(5)
        loss_ref, grads_ref, _ = ref_net.train_step(x, y)

        # Checkpointing: exact.
        from repro.checkpointing import revolve_schedule
        from repro.autodiff import run_schedule

        res = run_schedule(ref_net, revolve_schedule(4, 2), x, y)
        assert res.loss == loss_ref

        # Accumulation: BN statistics differ per micro-batch => inexact.
        acc_net = bn_net(5)
        t = Trainer(
            acc_net,
            Momentum(acc_net.layers, lr=1e-9),  # ~no parameter movement
            TrainerConfig(epochs=1, batch_size=32, micro_batch_size=8, shuffle_seed=0),
        )
        from repro.autodiff.data import Dataset

        t.fit(Dataset(x, y))
        assert t.history[0].mean_loss != pytest.approx(loss_ref, rel=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(batch_size=8, micro_batch_size=16)
        with pytest.raises(ValueError):
            TrainerConfig(micro_batch_size=0)


class TestLoop:
    def test_history_per_epoch(self, rng, data):
        net = make_net(rng)
        t = Trainer(net, Momentum(net.layers, lr=0.02), TrainerConfig(epochs=7))
        hist = t.fit(data)
        assert len(hist) == 7
        assert [h.epoch for h in hist] == list(range(7))

    def test_loss_decreases(self, rng, data):
        net = make_net(rng)
        t = Trainer(net, Momentum(net.layers, lr=0.02), TrainerConfig(epochs=10))
        hist = t.fit(data)
        assert hist[-1].mean_loss < hist[0].mean_loss

    def test_early_stop(self, rng, data):
        net = make_net(rng)
        t = Trainer(
            net,
            Momentum(net.layers, lr=0.05),
            TrainerConfig(epochs=50, early_stop_loss=0.2),
        )
        hist = t.fit(data)
        assert len(hist) < 50
        assert hist[-1].mean_loss <= 0.2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainerConfig(rho=0.5)
