"""Energy calculator: ship-vs-local training and streaming inference."""

import pytest

from repro.edge import (
    EnergyModel,
    breakeven_epochs,
    compare_strategies_energy,
    streaming_comparison,
)


class TestEnergyModel:
    def test_transfer_linear(self):
        m = EnergyModel(radio_j_per_byte=2e-6)
        assert m.transfer_energy(1_000_000) == pytest.approx(2.0)

    def test_compute_linear(self):
        m = EnergyModel(compute_j_per_flop=1e-10)
        assert m.compute_energy(1e10) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(radio_j_per_byte=-1.0)
        with pytest.raises(ValueError):
            EnergyModel().transfer_energy(-1)
        with pytest.raises(ValueError):
            EnergyModel().compute_energy(-1)


class TestTrainingComparison:
    def test_components(self):
        cmp = compare_strategies_energy(
            n_images=100,
            image_bytes=10_000,
            flops_per_sample=1e9,
            epochs=10,
            model=EnergyModel(radio_j_per_byte=1e-6, compute_j_per_flop=1e-10),
        )
        assert cmp.ship_joules == pytest.approx(100 * 10_000 * 1e-6)
        # bwd_ratio 2: 3 fwd-equivalents per sample per epoch
        assert cmp.local_joules == pytest.approx(100 * 10 * 3e9 * 1e-10)

    def test_rho_raises_local_cost(self):
        base = compare_strategies_energy(100, 10_000, 1e9, 10, rho=1.0)
        ckpt = compare_strategies_energy(100, 10_000, 1e9, 10, rho=1.5)
        assert ckpt.local_joules > base.local_joules
        assert ckpt.ship_joules == base.ship_joules

    def test_model_download_charged(self):
        a = compare_strategies_energy(100, 10_000, 1e9, 1, model_bytes=0)
        b = compare_strategies_energy(100, 10_000, 1e9, 1, model_bytes=50_000_000)
        assert b.ship_joules > a.ship_joules

    def test_ratio_and_winner(self):
        cheap_compute = EnergyModel(radio_j_per_byte=5e-6, compute_j_per_flop=1e-13)
        cmp = compare_strategies_energy(1000, 10_000, 1e9, 1, model=cheap_compute)
        assert cmp.local_wins
        assert cmp.ratio < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_strategies_energy(-1, 10, 1e9, 1)
        with pytest.raises(ValueError):
            compare_strategies_energy(1, 10, 1e9, 1, rho=0.5)


class TestBreakeven:
    def test_breakeven_consistency(self):
        """At exactly the breakeven epoch count, the two sides tie."""
        m = EnergyModel()
        eps = breakeven_epochs(10_000, 1e9, model=m)
        tie = compare_strategies_energy(
            n_images=500, image_bytes=10_000, flops_per_sample=1e9,
            epochs=max(1, round(eps)), model=m,
        )
        # epochs is integer-rounded; allow the rounding slack.
        assert tie.ratio == pytest.approx(max(1, round(eps)) / eps, rel=0.01)

    def test_breakeven_scales_with_radio_cost(self):
        cheap = breakeven_epochs(10_000, 1e9, model=EnergyModel(radio_j_per_byte=1e-7))
        dear = breakeven_epochs(10_000, 1e9, model=EnergyModel(radio_j_per_byte=1e-5))
        assert dear > cheap

    def test_rho_lowers_breakeven(self):
        plain = breakeven_epochs(10_000, 1e9, rho=1.0)
        ckpt = breakeven_epochs(10_000, 1e9, rho=2.0)
        assert ckpt < plain

    def test_free_compute(self):
        m = EnergyModel(compute_j_per_flop=0.0)
        assert breakeven_epochs(10_000, 1e9, model=m) == float("inf")


class TestStreaming:
    def test_ship_scales_with_frame_size(self):
        small = streaming_comparison(1.0, 20_000, 4e9)
        large = streaming_comparison(1.0, 200_000, 4e9)
        assert large.ship_joules == pytest.approx(10 * small.ship_joules)
        assert large.local_joules == small.local_joules

    def test_local_scales_with_model_cost(self):
        light = streaming_comparison(1.0, 100_000, 4e8)
        heavy = streaming_comparison(1.0, 100_000, 4e9)
        assert heavy.local_joules == pytest.approx(10 * light.local_joules)

    def test_big_frames_cheap_model_favours_local(self):
        """Raw-ish frames + a light detector: edge inference wins — the
        paper's bandwidth argument in energy terms."""
        cmp = streaming_comparison(2.0, 500_000, 1e9)
        assert cmp.local_wins

    def test_validation(self):
        with pytest.raises(ValueError):
            streaming_comparison(0.0, 100, 1e9)
        with pytest.raises(ValueError):
            streaming_comparison(1.0, 100, -1.0)
