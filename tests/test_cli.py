"""The command-line interface regenerates every artifact."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    assert code == 0
    return out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])


class TestTables:
    def test_table1_default(self, capsys):
        out = run(capsys, "table1")
        assert "Table I" in out
        assert "ResNet152" in out

    def test_table1_csv(self, capsys):
        out = run(capsys, "table1", "--csv")
        assert out.splitlines()[0].startswith("batch,")

    def test_table1_paper_source(self, capsys):
        out = run(capsys, "table1", "--source", "paper")
        assert "230.05" in out

    def test_table1_compare(self, capsys):
        out = run(capsys, "table1", "--compare")
        assert "x)" in out

    def test_table2(self, capsys):
        out = run(capsys, "table2", "--source", "paper")
        assert "1500" in out

    def test_table3(self, capsys):
        out = run(capsys, "table3", "--source", "paper")
        assert "GB" in out


class TestOtherArtifacts:
    def test_section5(self, capsys):
        out = run(capsys, "section5")
        assert "Mem(l, s)" in out

    def test_figure1_ascii(self, capsys):
        out = run(capsys, "figure1", "--panel", "a")
        assert "Figure 1a" in out

    def test_figure1_csv(self, capsys):
        out = run(capsys, "figure1", "--panel", "b", "--csv")
        lines = out.splitlines()
        assert lines[0] == "model,rho,memory_mb"
        assert len(lines) > 100

    def test_ablation(self, capsys):
        out = run(capsys, "ablation")
        assert "revolve" in out

    def test_ablation_covers_all_registered_strategies(self, capsys):
        from repro.checkpointing import available_strategies

        out = run(capsys, "ablation")
        for name in available_strategies():
            assert name in out

    def test_ablation_strategy_restriction(self, capsys):
        out = run(capsys, "ablation", "--strategy", "revolve", "--strategy", "sqrt")
        header = out.splitlines()[1]
        assert "revolve" in header and "sqrt" in header
        assert "uniform" not in out and "disk_revolve" not in out

    def test_ablation_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            main(["ablation", "--strategy", "nope"])

    def test_strategies_listing(self, capsys):
        from repro.checkpointing import available_strategies

        out = run(capsys, "strategies", "--length", "24", "--budget", "6")
        for name in available_strategies():
            assert name in out
        assert "schedule cache:" in out
        assert "feasible" in out

    def test_strategies_infeasible_marked(self, capsys):
        out = run(capsys, "strategies", "--length", "50", "--budget", "2")
        line = next(l for l in out.splitlines() if l.startswith("store_all"))
        assert "no" in line and "inf" in line

    def test_batch_tradeoff(self, capsys):
        out = run(capsys, "batch-tradeoff", "--model", "18", "--images", "1000")
        assert "ResNet18" in out

    def test_viewpoint_small(self, capsys):
        out = run(capsys, "viewpoint", "--subjects", "20", "--epochs", "3")
        assert "teacher" in out
        assert "recovery" in out

    def test_summary(self, capsys):
        out = run(capsys, "summary")
        assert "Table I" in out
        assert "Figure 1b" in out


class TestExtensionCommands:
    def test_pareto(self, capsys):
        out = run(capsys, "pareto", "--length", "50")
        assert "Pareto" in out
        assert "slots" in out

    def test_pareto_elides_long_frontier(self, capsys):
        out = run(capsys, "pareto", "--length", "152")
        assert "elided" in out

    def test_disk_revolve(self, capsys):
        out = run(capsys, "disk-revolve", "--length", "50", "--mem-slots", "2")
        assert "two-level optimal cost" in out

    def test_campaign(self, capsys):
        out = run(capsys, "campaign", "--crossings", "200", "--target", "0.8")
        assert "target reached" in out

    def test_energy(self, capsys):
        out = run(capsys, "energy")
        assert "breakeven" in out
        assert "Streaming" in out

    def test_sensitivity(self, capsys):
        out = run(capsys, "sensitivity")
        assert "sensitivity" in out

    def test_extended(self, capsys):
        out = run(capsys, "extended")
        assert "MobileNetV2" in out

    def test_profile(self, capsys):
        out = run(capsys, "profile", "--model", "18", "--top", "4")
        assert "activation holders" in out

    def test_fleet(self, capsys):
        out = run(capsys, "fleet", "--nodes", "4", "--days", "10")
        assert "isolated" in out and "federated" in out

    def test_fleet_seed_flag(self, capsys):
        a = run(capsys, "fleet", "--nodes", "4", "--days", "10", "--seed", "5")
        b = run(capsys, "fleet", "--nodes", "4", "--days", "10", "--seed", "5")
        c = run(capsys, "fleet", "--nodes", "4", "--days", "10", "--seed", "6")
        assert a == b
        assert a != c

    def test_fleet_crash_rate(self, capsys):
        out = run(
            capsys, "fleet", "--nodes", "6", "--days", "30",
            "--crash-rate", "0.1", "--seed", "3",
        )
        assert "faults" in out and "crashes" in out and "samples lost" in out


class TestMegafleet:
    def test_summary_output(self, capsys):
        out = run(capsys, "megafleet", "--devices", "5000", "--days", "15")
        assert "Megafleet: 5,000 devices over 15 days" in out
        assert "pi3-sd" in out and "jetson-emmc" in out
        assert "totals:" in out

    def test_jobs_do_not_change_the_output(self, capsys):
        argv = ("megafleet", "--devices", "9000", "--days", "12",
                "--federation-period", "4", "--seed", "2")
        serial = run(capsys, *argv, "--jobs", "1", "--shard-devices", "4096")
        sharded = run(capsys, *argv, "--jobs", "2", "--shard-devices", "4096")
        assert serial == sharded

    def test_uniform_preset_and_csv(self, capsys):
        out = run(
            capsys, "megafleet", "--preset", "uniform", "--devices", "2000",
            "--days", "10", "--report-every", "2", "--format", "csv",
        )
        lines = out.strip().splitlines()
        assert lines[0] == "day,mean_accuracy,min_accuracy,devices_up,radio_bytes_total"
        assert len(lines) == 6  # days 2,4,6,8,10

    def test_matches_cached_run_path(self, capsys):
        """The hand-written command and ``run megafleet`` agree."""
        direct = run(capsys, "megafleet", "--devices", "3000", "--days", "10",
                     "--jobs", "2")
        via_run = run(capsys, "run", "megafleet", "--param", "devices=3000",
                      "--param", "days=10")
        assert direct == via_run


class TestResilience:
    def test_report_recovers_young_daly(self, capsys):
        out = run(capsys, "resilience", "--trials", "10")
        assert "tau*" in out
        assert "Young/Daly optimum recovered" in out
        assert "Overhead vs fault rate" in out

    def test_seeded_runs_reproduce(self, capsys):
        a = run(capsys, "resilience", "--trials", "5", "--seed", "4")
        b = run(capsys, "resilience", "--trials", "5", "--seed", "4")
        assert a == b

    def test_storage_choice_changes_delta(self, capsys):
        sd = run(capsys, "resilience", "--trials", "2", "--storage", "sd-card")
        emmc = run(capsys, "resilience", "--trials", "2", "--storage", "emmc")
        delta = lambda s: float(s.split("delta = ")[1].split(" s")[0])  # noqa: E731
        assert delta(emmc) < delta(sd)

    def test_resilience_trace_flag(self, capsys, tmp_path):
        import json

        path = tmp_path / "res.json"
        run(capsys, "resilience", "--trials", "3", "--trace", str(path))
        doc = json.loads(path.read_text())
        cats = {e["cat"] for e in doc["traceEvents"]}
        assert "recovery" in cats

    def test_all_writes_artifacts(self, capsys, tmp_path):
        out = run(capsys, "all", "--outdir", str(tmp_path))
        assert out.count("wrote") >= 20
        assert (tmp_path / "table1_ours.txt").exists()
        assert (tmp_path / "figure1_b.csv").exists()


class TestTrace:
    def test_trace_figure1_chrome_categories(self, capsys, tmp_path):
        import json

        path = tmp_path / "t.json"
        out = run(capsys, "trace", "figure1", "--out", str(path))
        assert "Figure 1" in out  # wrapped command output still printed
        assert "trace written to" in out
        doc = json.loads(path.read_text())
        cats = {e["cat"] for e in doc["traceEvents"]}
        assert {"epoch", "batch", "action", "cache"} <= cats

    def test_trace_passes_wrapped_flags(self, capsys, tmp_path):
        path = tmp_path / "t.json"
        out = run(capsys, "trace", "figure1", "--panel", "a", "--out", str(path))
        assert "Figure 1a" in out
        assert path.exists()

    def test_trace_jsonl_format(self, capsys, tmp_path):
        import json

        path = tmp_path / "t.jsonl"
        run(capsys, "trace", "strategies", "--out", str(path), "--format", "jsonl")
        lines = path.read_text().splitlines()
        assert lines
        assert all(json.loads(line) for line in lines)

    def test_trace_summary_format(self, capsys, tmp_path):
        path = tmp_path / "t.txt"
        run(capsys, "trace", "strategies", "--out", str(path), "--format", "summary")
        assert "category" in path.read_text()

    def test_trace_no_probe_skips_training(self, capsys, tmp_path):
        import json

        path = tmp_path / "t.json"
        run(capsys, "trace", "strategies", "--out", str(path), "--no-probe")
        doc = json.loads(path.read_text())
        cats = {e["cat"] for e in doc["traceEvents"]}
        assert "cache" in cats and "epoch" not in cats

    def test_trace_of_trace_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "trace", "figure1"])

    def test_tracer_restored_after_trace(self, capsys, tmp_path):
        from repro.obs import NullTracer, get_tracer

        run(capsys, "trace", "strategies", "--out", str(tmp_path / "t.json"))
        assert isinstance(get_tracer(), NullTracer)

    def test_ablation_trace_flag(self, capsys, tmp_path):
        import json

        path = tmp_path / "abl.json"
        out = run(capsys, "ablation", "--strategy", "revolve", "--trace", str(path))
        assert "trace written to" in out
        doc = json.loads(path.read_text())
        cells = [e for e in doc["traceEvents"] if e["name"] == "cell"]
        # one span per (length, budget) cell of the ablation grid
        assert len(cells) == 5 * 5
        assert all(e["cat"] == "ablation" for e in cells)

    def test_viewpoint_trace_flag(self, capsys, tmp_path):
        import json

        path = tmp_path / "vp.json"
        out = run(capsys, "viewpoint", "--subjects", "20", "--epochs", "3", "--trace", str(path))
        assert "recovery" in out
        doc = json.loads(path.read_text())
        cats = {e["cat"] for e in doc["traceEvents"]}
        assert {"campaign", "stage"} <= cats


class TestExecCommand:
    def test_sim_backend_default(self, capsys):
        out = run(capsys, "exec", "--strategy", "revolve", "--length", "12", "--slots", "3")
        assert "backend=sim" in out
        assert "forward steps" in out
        assert "peak slots        : 3" in out

    def test_tensor_backend_reports_loss(self, capsys):
        out = run(capsys, "exec", "--backend", "tensor", "--length", "6", "--slots", "2")
        assert "backend=tensor" in out
        assert "loss" in out
        assert "peak live bytes" in out

    def test_tiered_backend_reports_per_tier_costs(self, capsys):
        out = run(
            capsys, "exec", "--strategy", "disk_revolve", "--backend", "tiered",
            "--length", "20", "--slots", "2", "--storage", "emmc",
        )
        assert "backend=tiered" in out
        assert "transfer time" in out
        assert "memory tier:" in out
        assert "disk   tier:" in out
        assert "[emmc]" in out

    def test_infeasible_strategy_reports_cleanly(self, capsys):
        out = run(capsys, "exec", "--strategy", "store_all", "--length", "10", "--slots", "2")
        assert "cannot reverse l=10 within 2 slots" in out

    def test_trace_flag_writes_action_spans(self, capsys, tmp_path):
        import json

        path = tmp_path / "exec.json"
        out = run(
            capsys, "exec", "--strategy", "disk_revolve", "--backend", "tiered",
            "--length", "20", "--slots", "2", "--trace", str(path),
        )
        assert "trace written to" in out
        doc = json.loads(path.read_text())
        actions = [e for e in doc["traceEvents"] if e["cat"] == "action"]
        assert actions
        kinds = {e["name"] for e in actions}
        assert {"ADVANCE", "SNAPSHOT", "RESTORE", "ADJOINT"} <= kinds

    def test_sim_backend_trace_uses_sim_events(self, capsys, tmp_path):
        import json

        path = tmp_path / "sim.json"
        run(capsys, "exec", "--strategy", "revolve", "--length", "12", "--slots", "3",
            "--trace", str(path))
        doc = json.loads(path.read_text())
        cats = {e["cat"] for e in doc["traceEvents"]}
        assert "sim" in cats
