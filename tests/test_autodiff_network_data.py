"""SequentialNet, MemoryMeter and synthetic datasets."""

import numpy as np
import pytest

from repro.autodiff import (
    DenseLayer,
    MemoryMeter,
    Momentum,
    ReLULayer,
    SequentialNet,
    accuracy,
    batches,
    gaussian_blobs,
    image_blobs,
    softmax_cross_entropy,
    spirals,
)
from repro.autodiff.data import Dataset


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestSequentialNet:
    def test_forward_matches_activations_tail(self, rng):
        net = SequentialNet([DenseLayer(4, 4, rng, "a"), ReLULayer("r"), DenseLayer(4, 2, rng, "b")])
        x = rng.normal(size=(3, 4))
        acts = net.activations(x)
        assert len(acts) == 4
        assert np.array_equal(acts[-1], net.forward(x))

    def test_param_bytes(self, rng):
        net = SequentialNet([DenseLayer(4, 4, rng, "a")])
        assert net.param_bytes == (16 + 4) * 8

    def test_train_step_decreases_loss(self, rng):
        net = SequentialNet(
            [DenseLayer(2, 16, rng, "a"), ReLULayer("r"), DenseLayer(16, 3, rng, "b")]
        )
        data = gaussian_blobs(40, 3, 2, rng)
        opt = Momentum(net.layers, lr=0.1)
        first = last = None
        for _ in range(40):
            loss, grads, _ = net.train_step(data.x, data.y)
            opt.step(grads)
            first = first if first is not None else loss
            last = loss
        assert last < first * 0.3
        assert accuracy(net.forward(data.x), data.y) > 0.9

    def test_activation_bytes_per_batch(self, rng):
        net = SequentialNet([DenseLayer(4, 8, rng, "a"), DenseLayer(8, 2, rng, "b")])
        sizes = net.activation_bytes(rng.normal(size=(5, 4)))
        assert sizes == [5 * 4 * 8, 5 * 8 * 8, 5 * 2 * 8]


class TestMemoryMeter:
    def test_peak_tracks_high_water(self):
        m = MemoryMeter()
        m.hold("a", np.zeros(100))
        m.hold("b", np.zeros(200))
        m.release("a")
        m.hold("c", np.zeros(10))
        assert m.peak_bytes == 300 * 8
        assert m.current_bytes == 210 * 8

    def test_replace_same_name(self):
        m = MemoryMeter()
        m.hold("x", np.zeros(100))
        m.hold("x", np.zeros(50))
        assert m.current_bytes == 50 * 8

    def test_release_absent_is_noop(self):
        m = MemoryMeter()
        m.release("nope")
        assert m.current_bytes == 0

    def test_hold_none_releases(self):
        m = MemoryMeter()
        m.hold("x", np.zeros(10))
        m.hold("x", None)
        assert m.current_bytes == 0

    def test_live_snapshot(self):
        m = MemoryMeter()
        m.hold("x", np.zeros(10))
        assert m.live() == {"x": 80}


class TestDatasets:
    def test_gaussian_blobs_shapes(self, rng):
        d = gaussian_blobs(10, 3, 5, rng)
        assert len(d) == 30
        assert d.x.shape == (30, 5)
        assert d.num_classes == 3

    def test_blobs_separable(self, rng):
        d = gaussian_blobs(50, 2, 4, rng, spread=0.5, separation=8.0)
        mid = (d.x[d.y == 0].mean(0) + d.x[d.y == 1].mean(0)) / 2
        side = np.sign((d.x - mid) @ (d.x[d.y == 1].mean(0) - mid))
        acc = max((side == np.where(d.y == 1, 1, -1)).mean(), (side != np.where(d.y == 1, 1, -1)).mean())
        assert acc > 0.95

    def test_spirals_balanced(self, rng):
        d = spirals(25, 3, rng)
        counts = np.bincount(d.y)
        assert (counts == 25).all()

    def test_image_blobs_nchw(self, rng):
        d = image_blobs(4, 4, 8, rng, channels=2)
        assert d.x.shape == (16, 2, 8, 8)

    def test_batches_cover_everything(self, rng):
        d = gaussian_blobs(10, 2, 3, rng)
        seen = 0
        for xb, yb in batches(d, 7):
            assert len(xb) == len(yb) <= 7
            seen += len(xb)
        assert seen == len(d)

    def test_batches_shuffled_differ(self, rng):
        d = gaussian_blobs(20, 2, 3, rng)
        a = next(iter(batches(d, 8, np.random.default_rng(1))))[0]
        b = next(iter(batches(d, 8, np.random.default_rng(2))))[0]
        assert not np.array_equal(a, b)

    def test_dataset_validation(self, rng):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4, dtype=np.int64))

    def test_subset(self, rng):
        d = gaussian_blobs(5, 2, 2, rng)
        sub = d.subset(np.array([0, 1, 2]))
        assert len(sub) == 3

    def test_batch_size_validation(self, rng):
        d = gaussian_blobs(5, 2, 2, rng)
        with pytest.raises(ValueError):
            list(batches(d, 0))
