"""Losses, optimizers and their memory-state accounting."""

import numpy as np
import pytest

from repro.autodiff import (
    SGD,
    Adam,
    DenseLayer,
    Momentum,
    accuracy,
    mse_loss,
    softmax,
    softmax_cross_entropy,
)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestSoftmaxCE:
    def test_softmax_rows_sum_to_one(self, rng):
        p = softmax(rng.normal(size=(6, 4)))
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_shift_invariance(self, rng):
        z = rng.normal(size=(3, 5))
        assert np.allclose(softmax(z), softmax(z + 100.0))

    def test_loss_uniform_is_log_k(self):
        logits = np.zeros((4, 10))
        labels = np.arange(4)
        loss, _ = softmax_cross_entropy(logits, labels)
        assert loss == pytest.approx(np.log(10))

    def test_loss_nonnegative_even_when_confident(self):
        logits = np.zeros((1, 3))
        logits[0, 1] = 100.0
        loss, _ = softmax_cross_entropy(logits, np.array([1]))
        assert 0.0 <= loss < 1e-9

    def test_gradient_numeric(self, rng):
        logits = rng.normal(size=(5, 4))
        labels = rng.integers(0, 4, size=5)
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        gnum = np.zeros_like(logits)
        for i in range(5):
            for j in range(4):
                logits[i, j] += eps
                lp, _ = softmax_cross_entropy(logits, labels)
                logits[i, j] -= 2 * eps
                lm, _ = softmax_cross_entropy(logits, labels)
                logits[i, j] += eps
                gnum[i, j] = (lp - lm) / (2 * eps)
        assert np.allclose(grad, gnum, atol=1e-7)

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 1.0], [0.0, 3.0]])
        labels = np.array([0, 1, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(0.75)


class TestMSE:
    def test_gradient_numeric(self, rng):
        pred = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 3))
        loss, grad = mse_loss(pred, target)
        eps = 1e-6
        i = (1, 2)
        pred[i] += eps
        lp, _ = mse_loss(pred, target)
        pred[i] -= 2 * eps
        lm, _ = mse_loss(pred, target)
        pred[i] += eps
        assert grad[i] == pytest.approx((lp - lm) / (2 * eps), abs=1e-8)

    def test_zero_at_match(self, rng):
        x = rng.normal(size=(3, 3))
        loss, grad = mse_loss(x, x.copy())
        assert loss == 0.0
        assert np.allclose(grad, 0.0)


def quadratic_layer(rng):
    """A single dense layer we drive to fit a fixed target."""
    layer = DenseLayer(4, 3, rng, name="fc")
    x = rng.normal(size=(16, 4))
    target = rng.integers(0, 3, size=16)
    return layer, x, target


def run_steps(opt_cls, rng, steps=60, **kw):
    layer, x, labels = quadratic_layer(rng)
    opt = opt_cls([layer], **kw)
    losses = []
    for _ in range(steps):
        logits = layer.forward(x)
        loss, dy = softmax_cross_entropy(logits, labels)
        _, grads = layer.backward(x, dy)
        opt.step({("fc", k): v for k, v in grads.items()})
        losses.append(loss)
    return losses


class TestOptimizers:
    def test_sgd_decreases_loss(self, rng):
        losses = run_steps(SGD, rng, lr=0.5)
        assert losses[-1] < losses[0] * 0.5

    def test_momentum_decreases_loss(self, rng):
        losses = run_steps(Momentum, rng, lr=0.2)
        assert losses[-1] < losses[0] * 0.5

    def test_adam_decreases_loss(self, rng):
        losses = run_steps(Adam, rng, lr=0.05)
        assert losses[-1] < losses[0] * 0.5

    def test_state_copies_ladder(self, rng):
        layer = DenseLayer(4, 3, rng)
        assert SGD([layer]).state_copies == 0
        assert Momentum([layer]).state_copies == 1
        assert Adam([layer]).state_copies == 2

    def test_state_bytes_after_steps(self, rng):
        layer, x, labels = quadratic_layer(rng)
        opt = Adam([layer], lr=0.01)
        per_copy = sum(v.nbytes for v in layer.params.values())
        assert opt.state_bytes == 2 * per_copy

    def test_lr_validation(self, rng):
        layer = DenseLayer(4, 3, rng)
        with pytest.raises(ValueError):
            SGD([layer], lr=0.0)

    def test_missing_grads_are_skipped(self, rng):
        layer = DenseLayer(4, 3, rng)
        before = layer.params["W"].copy()
        SGD([layer], lr=1.0).step({})
        assert np.array_equal(layer.params["W"], before)
