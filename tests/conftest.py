"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import (
    ConvLayer,
    DenseLayer,
    FlattenLayer,
    MaxPoolLayer,
    ReLULayer,
    SequentialNet,
)
from repro.autodiff.data import image_blobs


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def fresh_schedule_cache():
    """Empty schedule cache (and zeroed cache metrics) before and after.

    Tests asserting on hit/miss counts or cache identity must start from
    a known-empty cache regardless of what ran before them in the suite.
    Also detaches any cross-process compiled-program store and clears
    the compiled-program layer, which shares the cache's lifecycle.
    """
    from repro.checkpointing import clear_schedule_cache, set_program_store

    previous_store = set_program_store(None)
    clear_schedule_cache()
    yield
    clear_schedule_cache()
    set_program_store(previous_store)


@pytest.fixture
def small_cnn(rng: np.random.Generator) -> SequentialNet:
    """An 8-layer conv chain used across executor tests."""
    return SequentialNet(
        [
            ConvLayer(1, 4, 3, rng, padding=1, name="c1"),
            ReLULayer("r1"),
            MaxPoolLayer(2, "p1"),
            ConvLayer(4, 8, 3, rng, padding=1, name="c2"),
            ReLULayer("r2"),
            FlattenLayer("fl"),
            DenseLayer(8 * 4 * 4, 16, rng, "d1"),
            DenseLayer(16, 3, rng, "d2"),
        ],
        name="small_cnn",
    )


@pytest.fixture
def small_batch(rng: np.random.Generator):
    data = image_blobs(n_per_class=6, num_classes=3, size=8, rng=rng)
    return data.x[:8], data.y[:8]
