"""Specs, params and the experiment registry."""

import pytest

from repro import lab
from repro.errors import LabError

import repro.experiments  # noqa: F401  (registers the paper's specs)


def _ascii(doc):
    return str(doc) + "\n"


def make_spec(name="t_spec", **kw):
    kw.setdefault("title", "test spec")
    kw.setdefault("compute", lambda params, inputs: {"v": params.get("x", 0)})
    kw.setdefault("renderers", {"ascii": _ascii})
    kw.setdefault("code_fingerprint", "f" * 64)
    return lab.ExperimentSpec(name=name, **kw)


class TestParam:
    def test_coerce_type(self):
        assert lab.Param("x", int).coerce("7") == 7

    def test_default_none_passes_through(self):
        assert lab.Param("x", int).coerce(None) is None

    def test_none_with_default_rejected(self):
        with pytest.raises(LabError):
            lab.Param("x", int, default=3).coerce(None)

    def test_choices_enforced(self):
        p = lab.Param("s", str, default="a", choices=("a", "b"))
        assert p.coerce("b") == "b"
        with pytest.raises(LabError):
            p.coerce("c")

    def test_repeated_coerces_to_tuple(self):
        p = lab.Param("ls", int, repeated=True)
        assert p.coerce(["1", 2]) == (1, 2)

    def test_repeated_rejects_bare_string(self):
        with pytest.raises(LabError):
            lab.Param("ls", int, repeated=True).coerce("12")

    def test_repeated_choices(self):
        p = lab.Param("ls", int, repeated=True, choices=(1, 2))
        with pytest.raises(LabError):
            p.coerce([1, 3])


class TestExperimentSpec:
    def test_requires_ascii_renderer(self):
        with pytest.raises(LabError):
            make_spec(renderers={"csv": _ascii})

    def test_rejects_bad_name(self):
        with pytest.raises(LabError):
            make_spec(name="bad name!")

    def test_rejects_duplicate_params(self):
        with pytest.raises(LabError):
            make_spec(params=(lab.Param("x"), lab.Param("x")))

    def test_validate_params_fills_defaults(self):
        spec = make_spec(params=(lab.Param("x", int, default=5),))
        assert spec.validate_params() == {"x": 5}
        assert spec.validate_params({"x": "9"}) == {"x": 9}

    def test_validate_params_rejects_unknown(self):
        spec = make_spec(params=(lab.Param("x", int, default=5),))
        with pytest.raises(LabError):
            spec.validate_params({"y": 1})

    def test_explicit_fingerprint_wins(self):
        assert make_spec().fingerprint() == "f" * 64

    def test_module_fingerprint_is_stable(self):
        spec = lab.get_spec("table1")
        assert spec.fingerprint() == spec.fingerprint()
        assert len(spec.fingerprint()) == 64


class TestKeys:
    def test_canonical_params_sorted(self):
        assert lab.canonical_params({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_canonical_rejects_nan(self):
        with pytest.raises(LabError):
            lab.canonical_payload({"x": float("nan")})

    def test_key_changes_with_params(self):
        spec = make_spec(params=(lab.Param("x", int, default=1),))
        k1 = lab.unit_key(spec, {"x": 1})
        k2 = lab.unit_key(spec, {"x": 2})
        assert k1 != k2 and len(k1) == 64

    def test_key_changes_with_fingerprint(self):
        a = make_spec(code_fingerprint="a" * 64)
        b = make_spec(code_fingerprint="b" * 64)
        assert lab.unit_key(a, {}) != lab.unit_key(b, {})


class TestRegistry:
    def test_paper_specs_registered_in_order(self):
        names = lab.available_experiments()
        assert names[:3] == ("table1", "table2", "table3")
        assert set(names) >= {
            "section5", "figure1", "ablation", "sensitivity", "extended", "summary",
        }

    def test_duplicate_name_rejected(self):
        with pytest.raises(LabError):
            lab.register(make_spec(name="table1"))

    def test_unknown_dep_rejected(self):
        with pytest.raises(LabError):
            lab.register(make_spec(name="t_orphan", deps=(("no_such", {}),)))

    def test_register_unregister_roundtrip(self):
        lab.register(make_spec(name="t_tmp"))
        try:
            assert lab.get_spec("t_tmp").title == "test spec"
        finally:
            lab.unregister("t_tmp")
        with pytest.raises(LabError):
            lab.get_spec("t_tmp")

    def test_decorator_attaches_spec(self):
        @lab.experiment("t_deco", "decorated", params=(lab.Param("x", int, default=1),),
                        renderers={"ascii": _ascii})
        def fn(params, inputs):
            return {"x": params["x"]}

        try:
            assert fn.spec.name == "t_deco"
            assert fn.spec is lab.get_spec("t_deco")
            assert fn({"x": 1}, ()) == {"x": 1}  # still a plain callable
        finally:
            lab.unregister("t_deco")

    def test_default_units_validate_params(self):
        units = lab.default_units(["figure1"])
        assert len(units) == 4
        assert all(u.params["source"] == "paper" for u in units)
        assert units[0].outputs[0][0] == "figure1_a.txt"

    def test_default_units_all_specs(self):
        units = lab.default_units()
        # Derived, not pinned: every spec contributes its declared units.
        expected = sum(
            len(lab.get_spec(name).default_units)
            for name in lab.available_experiments()
        )
        assert len(units) == expected
        assert len(units) >= 23  # the PR-9 floor: specs only accrete
        assert sum(len(u.outputs) for u in units) >= 20
