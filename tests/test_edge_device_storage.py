"""Edge devices, storage sizing (paper Section III) and workloads."""

import pytest

from repro.edge import (
    DEVICE_CATALOG,
    GENERIC_2GB,
    ODROID_XU4,
    Device,
    ImageStore,
    PAPER_IMAGE_COUNT,
    PAPER_IMAGE_KB,
    TrainingWorkload,
)
from repro.errors import MemoryBudgetError
from repro.units import GB, KB, MB


class TestDevice:
    def test_odroid_is_the_paper_node(self):
        assert ODROID_XU4.mem_bytes == 2 * GB
        assert ODROID_XU4.cores == 8

    def test_catalog_keys_are_names(self):
        for name, dev in DEVICE_CATALOG.items():
            assert dev.name == name

    def test_flops_prefers_gpu(self):
        assert ODROID_XU4.flops_per_s == 30.0e9

    def test_cpu_only_device(self):
        assert DEVICE_CATALOG["RaspberryPi3B"].flops_per_s == 3.6e9

    def test_with_memory(self):
        bigger = ODROID_XU4.with_memory(4 * GB)
        assert bigger.mem_bytes == 4 * GB
        assert bigger.name == ODROID_XU4.name

    def test_validation(self):
        with pytest.raises(ValueError):
            Device(name="x", mem_bytes=0, cpu_gflops=1.0, storage_bytes=1)
        with pytest.raises(ValueError):
            Device(name="x", mem_bytes=1, cpu_gflops=1.0, storage_bytes=1, idle_fraction=0.0)


class TestImageStore:
    def test_paper_sizing_claim(self):
        """100k images at 10 kB is ~1 GB (not the paper's 'about 10GB');
        either way it fits the node's SD card."""
        store = ImageStore(capacity_bytes=ODROID_XU4.storage_bytes)
        need = store.dataset_bytes(PAPER_IMAGE_COUNT)
        assert need == pytest.approx(0.954 * GB, rel=0.01)
        assert store.fits(PAPER_IMAGE_COUNT)

    def test_image_bytes_default(self):
        assert ImageStore(capacity_bytes=GB).image_bytes == PAPER_IMAGE_KB * KB

    def test_max_images(self):
        store = ImageStore(capacity_bytes=MB, image_bytes=KB)
        assert store.max_images == 1024

    def test_require_raises(self):
        store = ImageStore(capacity_bytes=10 * KB, image_bytes=KB)
        store.require(10)
        with pytest.raises(MemoryBudgetError):
            store.require(11)

    def test_validation(self):
        with pytest.raises(ValueError):
            ImageStore(capacity_bytes=-1)
        with pytest.raises(ValueError):
            ImageStore(capacity_bytes=1, image_bytes=0)
        with pytest.raises(ValueError):
            ImageStore(capacity_bytes=1).dataset_bytes(-1)


class TestWorkload:
    def make(self, **kw):
        base = dict(
            model="R18",
            chain_length=18,
            slot_act_bytes_per_sample=1000,
            fixed_bytes=10_000,
            flops_per_sample=1e9,
            n_images=1000,
            batch_size=4,
        )
        base.update(kw)
        return TrainingWorkload(**base)

    def test_slot_bytes_scale_with_batch(self):
        w = self.make(batch_size=8)
        assert w.slot_bytes == 8 * 1000

    def test_batches_per_epoch_ceil(self):
        w = self.make(n_images=10, batch_size=3)
        assert w.batches_per_epoch == 4

    def test_step_flops_include_backward(self):
        w = self.make(batch_size=2, bwd_ratio=2.0)
        assert w.step_flops == 1e9 * 2 * 3.0

    def test_with_batch_preserves_rest(self):
        w = self.make().with_batch(16)
        assert w.batch_size == 16
        assert w.model == "R18"

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(batch_size=0)
        with pytest.raises(ValueError):
            self.make(chain_length=0)
        with pytest.raises(ValueError):
            self.make(flops_per_sample=0)
