"""Two-level (disk) checkpointing: DP limits, exact schedules, tiers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpointing import (
    DISK_SLOT_BASE,
    ChainSpec,
    disk_revolve_cost,
    disk_revolve_schedule,
    disk_revolve_splits,
    opt_forwards,
    simulate,
    simulate_tiered,
)
from repro.errors import ScheduleError


class TestCostLimits:
    @given(l=st.integers(1, 30), c=st.integers(1, 6))
    @settings(max_examples=80, deadline=None)
    def test_free_disk_is_single_sweep(self, l, c):
        """w = r = 0: disk behaves like infinite memory => l-1 forwards."""
        assert disk_revolve_cost(l, c, 0.0, 0.0) == float(l - 1)

    @given(l=st.integers(1, 30), c=st.integers(1, 6))
    @settings(max_examples=80, deadline=None)
    def test_expensive_disk_is_pure_revolve(self, l, c):
        c_eff = min(c, max(1, l - 1))
        assert disk_revolve_cost(l, c, 1e9, 1e9) == float(opt_forwards(l, c_eff))

    @given(l=st.integers(1, 30), c=st.integers(1, 6), w=st.floats(0, 10), r=st.floats(0, 10))
    @settings(max_examples=100, deadline=None)
    def test_never_worse_than_either_extreme(self, l, c, w, r):
        c_eff = min(c, max(1, l - 1))
        cost = disk_revolve_cost(l, c, w, r)
        assert cost <= opt_forwards(l, c_eff) + 1e-9
        assert cost >= l - 1 - 1e-9  # single sweep is the absolute floor

    def test_monotone_in_disk_cost(self):
        costs = [disk_revolve_cost(40, 2, w, w) for w in (0.0, 0.5, 1.0, 2.0, 5.0, 100.0)]
        assert costs == sorted(costs)

    def test_monotone_in_memory_slots(self):
        costs = [disk_revolve_cost(40, c, 2.0, 1.0) for c in (1, 2, 3, 5, 8)]
        assert costs == sorted(costs, reverse=True)

    def test_headline_win(self):
        """LinearResNet-152 with 3 memory slots: the SD tier cuts total
        cost by >2x versus memory-only Revolve."""
        two_level = disk_revolve_cost(152, 3, 2.0, 1.0)
        memory_only = opt_forwards(152, 3)
        assert two_level < memory_only / 2

    def test_validation(self):
        with pytest.raises(ScheduleError):
            disk_revolve_cost(0, 1)
        with pytest.raises(ScheduleError):
            disk_revolve_cost(5, 0)
        with pytest.raises(ScheduleError):
            disk_revolve_cost(5, 1, write_cost=-1.0)


class TestSplits:
    def test_no_splits_when_disk_useless(self):
        assert disk_revolve_splits(20, 3, 1e9, 1e9) == []

    def test_splits_strictly_increasing_in_range(self):
        splits = disk_revolve_splits(60, 2, 1.0, 1.0)
        assert splits == sorted(set(splits))
        assert all(0 < s < 60 for s in splits)

    def test_cheaper_disk_more_splits(self):
        few = len(disk_revolve_splits(60, 2, 10.0, 10.0))
        many = len(disk_revolve_splits(60, 2, 0.1, 0.1))
        assert many >= few


class TestSchedule:
    @given(
        l=st.integers(1, 35),
        c=st.integers(1, 5),
        w=st.sampled_from([0.0, 0.5, 1.0, 3.0]),
        r=st.sampled_from([0.0, 0.5, 1.0, 3.0]),
    )
    @settings(max_examples=80, deadline=None)
    def test_schedule_achieves_dp_cost(self, l, c, w, r):
        sch = disk_revolve_schedule(l, c, w, r)
        stats = simulate_tiered(sch)
        assert stats.total_cost(w, r) == pytest.approx(disk_revolve_cost(l, c, w, r))
        assert stats.peak_memory_slots <= c

    def test_pure_revolve_fallback(self):
        sch = disk_revolve_schedule(10, 3, 1e9, 1e9)
        assert sch.strategy == "revolve"
        assert simulate_tiered(sch).disk_writes == 0

    def test_disk_slots_use_reserved_ids(self):
        sch = disk_revolve_schedule(40, 2, 1.0, 1.0)
        disk_ids = {s for s in sch.used_slots() if s >= DISK_SLOT_BASE}
        assert disk_ids  # the plan actually uses the disk

    def test_reads_are_one_fewer_than_writes(self):
        """Every disk base is read back except the rightmost segment's,
        whose activation is still in the cursor when backward starts."""
        sch = disk_revolve_schedule(40, 2, 1.0, 1.0)
        stats = simulate_tiered(sch)
        assert stats.disk_reads == stats.disk_writes - 1

    def test_flat_simulator_validates(self):
        sch = disk_revolve_schedule(25, 2, 1.0, 0.5)
        stats = simulate(sch)  # raises if any invariant is violated
        assert stats.replay_steps == 25

    def test_byte_accounting_by_tier(self):
        spec = ChainSpec.homogeneous(12, act_bytes=10)
        sch = disk_revolve_schedule(12, 2, 0.5, 0.5)
        stats = simulate_tiered(sch, spec)
        assert stats.peak_memory_bytes <= 2 * 10
        assert stats.peak_disk_bytes >= 10

    def test_drives_real_executor_with_exact_gradients(self):
        """Disk slots are ordinary slot ids to the NumPy executor: a
        two-tier plan trains with gradients identical to store-all."""
        import numpy as np

        from repro.autodiff import DenseLayer, SequentialNet, run_schedule

        rng = np.random.default_rng(0)
        l = 12
        layers = [DenseLayer(6, 6, rng, name=f"f{i}") for i in range(l - 1)]
        layers.append(DenseLayer(6, 2, rng, name="head"))
        net = SequentialNet(layers)
        x = rng.normal(size=(3, 6))
        y = rng.integers(0, 2, size=3)
        loss_ref, grads_ref, _ = net.train_step(x, y)
        res = run_schedule(net, disk_revolve_schedule(l, 2, 0.5, 0.5), x, y)
        assert res.loss == loss_ref
        for k in grads_ref:
            assert np.array_equal(res.grads[k], grads_ref[k])
