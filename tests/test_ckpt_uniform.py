"""Uniform (checkpoint_sequential) strategy — the paper's Section V."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpointing import (
    best_segments,
    segment_lengths,
    simulate,
    sqrt_memory_slots,
    sqrt_schedule,
    sqrt_segments,
    uniform_extra_forwards,
    uniform_extra_forwards_fused,
    uniform_lower_bound,
    uniform_memory_slots,
    uniform_schedule,
)
from repro.errors import PlanningError, ScheduleError


class TestSegmentLengths:
    def test_even_split(self):
        assert segment_lengths(12, 3) == [4, 4, 4]

    def test_remainder_goes_last(self):
        assert segment_lengths(14, 4) == [3, 3, 3, 5]

    def test_one_segment(self):
        assert segment_lengths(9, 1) == [9]

    def test_lengths_sum_to_l(self):
        for l in range(1, 30):
            for s in range(1, l + 1):
                assert sum(segment_lengths(l, s)) == l

    def test_validation(self):
        with pytest.raises(ScheduleError):
            segment_lengths(5, 6)
        with pytest.raises(ScheduleError):
            segment_lengths(0, 1)


class TestFormula:
    def test_paper_formula_literal(self):
        # Mem = s - 1 + (l - floor(l/s)(s-1))
        l, s = 50, 5
        assert uniform_memory_slots(l, s) == (s - 1) + (l - (l // s) * (s - 1))

    def test_s_equals_one_is_store_all(self):
        assert uniform_memory_slots(20, 1) == 20

    def test_s_equals_l_keeps_boundaries(self):
        assert uniform_memory_slots(20, 20) == 20  # every input stored

    @given(l=st.integers(1, 300))
    @settings(max_examples=150, deadline=None)
    def test_lower_bound_2sqrt_l(self, l):
        """min_s Mem(l, s) stays within O(1) of the paper's 2√l bound."""
        best = min(uniform_memory_slots(l, s) for s in range(1, l + 1))
        assert best >= uniform_lower_bound(l) - 2.0
        assert best <= uniform_lower_bound(l) + math.sqrt(l)  # and is near it

    def test_extra_forwards_pytorch_convention(self):
        # All non-final segments re-run in full.
        assert uniform_extra_forwards(12, 3) == 8
        assert uniform_extra_forwards(12, 1) == 0

    def test_extra_forwards_fused_convention(self):
        assert uniform_extra_forwards_fused(12, 3) == 6
        assert uniform_extra_forwards_fused(12, 1) == 0


class TestBestSegments:
    def test_minimizes_formula(self):
        l = 101
        s = best_segments(l)
        best = uniform_memory_slots(l, s)
        assert best == min(uniform_memory_slots(l, t) for t in range(1, l + 1))

    def test_budgeted_picks_min_recompute(self):
        l = 50
        s = best_segments(l, slot_budget=30)
        assert uniform_memory_slots(l, s) <= 30
        # any smaller s (less recompute) must violate the budget
        for t in range(1, s):
            assert uniform_memory_slots(l, t) > 30

    def test_budget_too_small_raises(self):
        with pytest.raises(PlanningError):
            best_segments(100, slot_budget=3)


class TestUniformSchedule:
    @given(l=st.integers(1, 60), s=st.integers(1, 12))
    @settings(max_examples=150, deadline=None)
    def test_measured_peak_matches_formula(self, l, s):
        """Executing the schedule reproduces the Section V slot count."""
        if s > l:
            return
        sch = uniform_schedule(l, s)
        stats = simulate(sch)
        assert stats.peak_slots == uniform_memory_slots(l, s)

    @given(l=st.integers(1, 60), s=st.integers(1, 12))
    @settings(max_examples=150, deadline=None)
    def test_measured_extra_matches_fused_formula(self, l, s):
        if s > l:
            return
        stats = simulate(uniform_schedule(l, s))
        assert stats.extra_forward_steps() == uniform_extra_forwards_fused(l, s)

    def test_all_slots_freed_at_end(self):
        sch = uniform_schedule(20, 4)
        frees = sum(1 for a in sch.actions if a.kind.value == "free")
        snaps_distinct = len(sch.used_slots())
        assert frees >= snaps_distinct  # every distinct slot freed


class TestSqrt:
    def test_segments_near_sqrt(self):
        assert sqrt_segments(49) == 7
        assert sqrt_segments(50) == 7
        assert sqrt_segments(1) == 1

    def test_memory_near_bound(self):
        for l in (18, 50, 152):
            assert sqrt_memory_slots(l) <= uniform_lower_bound(l) + math.sqrt(l)

    def test_schedule_valid(self):
        sch = sqrt_schedule(30)
        stats = simulate(sch)
        assert stats.peak_slots == sqrt_memory_slots(30)
        assert sch.strategy == "sqrt"

    def test_validation(self):
        with pytest.raises(ValueError):
            sqrt_segments(0)
