"""Schedule JSON serialization: exact round trips, strict parsing."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpointing import (
    Schedule,
    revolve_schedule,
    schedule_from_json,
    schedule_to_json,
    simulate,
    uniform_schedule,
)
from repro.errors import ExecutionError, ScheduleError


class TestRoundTrip:
    @given(l=st.integers(1, 40), c=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_revolve_round_trip(self, l, c):
        original = revolve_schedule(l, c)
        restored = schedule_from_json(schedule_to_json(original))
        assert restored == original

    def test_uniform_round_trip(self):
        original = uniform_schedule(20, 4)
        restored = schedule_from_json(schedule_to_json(original))
        assert restored == original
        assert simulate(restored).peak_slots == simulate(original).peak_slots

    def test_json_is_valid_and_versioned(self):
        payload = json.loads(schedule_to_json(revolve_schedule(5, 2)))
        assert payload["version"] == 1
        assert payload["length"] == 5
        assert all(len(a) == 2 for a in payload["actions"])

    def test_indent_option(self):
        text = schedule_to_json(revolve_schedule(3, 1), indent=2)
        assert "\n" in text
        assert schedule_from_json(text).length == 3


class TestStrictParsing:
    def good(self):
        return json.loads(schedule_to_json(revolve_schedule(4, 2)))

    def test_not_json(self):
        with pytest.raises(ScheduleError):
            schedule_from_json("not json{")

    def test_not_object(self):
        with pytest.raises(ScheduleError):
            schedule_from_json("[1, 2]")

    def test_wrong_version(self):
        payload = self.good()
        payload["version"] = 99
        with pytest.raises(ScheduleError):
            schedule_from_json(json.dumps(payload))

    def test_missing_field(self):
        payload = self.good()
        del payload["slots"]
        with pytest.raises(ScheduleError):
            schedule_from_json(json.dumps(payload))

    def test_bad_action_shape(self):
        payload = self.good()
        payload["actions"][0] = ["snapshot"]
        with pytest.raises(ScheduleError):
            schedule_from_json(json.dumps(payload))

    def test_unknown_kind(self):
        payload = self.good()
        payload["actions"][0] = ["teleport", 0]
        with pytest.raises(ScheduleError):
            schedule_from_json(json.dumps(payload))

    def test_negative_arg(self):
        payload = self.good()
        payload["actions"][0] = ["snapshot", -1]
        with pytest.raises(ScheduleError):
            schedule_from_json(json.dumps(payload))

    def test_unregistered_strategy_rejected(self):
        payload = self.good()
        payload["strategy"] = "mystery_meat"
        with pytest.raises(ScheduleError, match="not a registered family"):
            schedule_from_json(json.dumps(payload))

    def test_parameterized_and_alias_labels_accepted(self):
        """Labels like "uniform(s=4)" and legacy "hetero_dp" resolve via
        the registry and survive loading."""
        for label in ("uniform(s=4)", "hetero_dp", "budget_dp", "disk_revolve(c_m=3)"):
            payload = self.good()
            payload["strategy"] = label
            assert schedule_from_json(json.dumps(payload)).strategy == label

    def test_require_registered_false_admits_foreign_labels(self):
        payload = self.good()
        payload["strategy"] = "external_tool"
        sch = schedule_from_json(json.dumps(payload), require_registered=False)
        assert sch.strategy == "external_tool"

    def test_verify_rejects_invalid_schedule(self):
        """Structurally valid JSON carrying a broken plan is caught by
        the machine when verify=True."""
        payload = self.good()
        payload["actions"] = payload["actions"][:-1]  # drop final adjoint
        with pytest.raises(ExecutionError):
            schedule_from_json(json.dumps(payload), verify=True)
        # And admitted when verification is explicitly skipped.
        sch = schedule_from_json(json.dumps(payload), verify=False)
        assert isinstance(sch, Schedule)
