"""Fault models and the training fault injector."""

import numpy as np
import pytest

from repro.errors import FaultError
from repro.resilience import (
    FaultInjector,
    PoissonFaults,
    PowerLossFaults,
    TransientDiskFaults,
    WeibullFaults,
)


class TestFaultModels:
    @pytest.mark.parametrize(
        "model",
        [
            PoissonFaults(mtbf_seconds=3600.0),
            WeibullFaults(mtbf_seconds=3600.0, shape=0.7),
            WeibullFaults(mtbf_seconds=3600.0, shape=1.5),
            PowerLossFaults(arrival_rate_per_hour=10.0, loss_probability=0.1),
        ],
    )
    def test_sample_mean_matches_mtbf(self, model):
        rng = np.random.default_rng(0)
        draws = [model.sample_time_to_failure(rng) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(model.mtbf_seconds, rel=0.05)

    def test_weibull_shape_one_is_exponential(self):
        """shape=1 degenerates to the memoryless model (same distribution)."""
        w = WeibullFaults(mtbf_seconds=100.0, shape=1.0)
        assert w._scale == pytest.approx(100.0)

    def test_power_loss_mtbf_closed_form(self):
        m = PowerLossFaults(arrival_rate_per_hour=6.0, loss_probability=0.01)
        # MTBF = 1 / (rate * p) = 3600/6 / 0.01
        assert m.mtbf_seconds == pytest.approx(60_000.0)

    def test_crash_times_sorted_within_horizon(self):
        rng = np.random.default_rng(1)
        times = PoissonFaults(mtbf_seconds=100.0).crash_times(rng, 1000.0)
        assert list(times) == sorted(times)
        assert all(0 <= t < 1000.0 for t in times)
        assert len(times) > 3  # ~10 expected

    def test_crash_times_deterministic_under_seed(self):
        a = PoissonFaults(50.0).crash_times(np.random.default_rng(7), 500.0)
        b = PoissonFaults(50.0).crash_times(np.random.default_rng(7), 500.0)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonFaults(mtbf_seconds=0)
        with pytest.raises(ValueError):
            WeibullFaults(mtbf_seconds=100.0, shape=0)
        with pytest.raises(ValueError):
            PowerLossFaults(loss_probability=0.0)
        with pytest.raises(ValueError):
            TransientDiskFaults(write_failure_probability=1.0)
        with pytest.raises(ValueError):
            PoissonFaults(100.0).crash_times(np.random.default_rng(0), -1.0)


class TestTransientDisk:
    def test_zero_probability_never_fails_without_drawing(self):
        faults = TransientDiskFaults(0.0)
        rng = np.random.default_rng(0)
        state = rng.bit_generator.state
        assert not faults.write_fails(rng)
        assert rng.bit_generator.state == state  # stream untouched

    def test_failure_rate_empirical(self):
        faults = TransientDiskFaults(0.25)
        rng = np.random.default_rng(3)
        fails = sum(faults.write_fails(rng) for _ in range(10_000))
        assert fails / 10_000 == pytest.approx(0.25, abs=0.02)


class TestFaultInjector:
    def test_fires_once_per_planned_step(self):
        inj = FaultInjector([3, 5])
        inj.check(1)
        inj.check(2)
        with pytest.raises(FaultError) as exc:
            inj.check(3)
        assert exc.value.step == 3
        inj.check(3)  # resumed run sails past the crash site
        inj.check(4)
        with pytest.raises(FaultError):
            inj.check(5)
        inj.check(6)
        assert inj.fired == [3, 5]
        assert inj.pending_steps == ()

    def test_late_check_still_fires(self):
        """A kill planned mid-step fires at the first check at/after it."""
        inj = FaultInjector([2])
        with pytest.raises(FaultError):
            inj.check(10)
        assert inj.fired == [2]

    def test_steps_deduped_and_sorted(self):
        inj = FaultInjector([9, 2, 2, 9])
        assert inj.pending_steps == (2, 9)

    def test_rejects_nonpositive_steps(self):
        with pytest.raises(ValueError):
            FaultInjector([0])

    def test_from_model_plans_within_run(self):
        rng = np.random.default_rng(5)
        inj = FaultInjector.from_model(
            PoissonFaults(mtbf_seconds=50.0), step_seconds=1.0, total_steps=200, rng=rng
        )
        assert inj.pending_steps  # ~4 crashes expected over the horizon
        assert all(1 <= s <= 200 for s in inj.pending_steps)

    def test_from_model_deterministic_under_seed(self):
        plan = lambda seed: FaultInjector.from_model(  # noqa: E731
            WeibullFaults(40.0), 0.5, 300, np.random.default_rng(seed)
        ).pending_steps
        assert plan(11) == plan(11)
