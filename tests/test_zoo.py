"""Model zoo: parameter counts must match the published architectures."""

import pytest

from repro.errors import ShapeError
from repro.graph import flop_report
from repro.zoo import (
    RESNET_CONFIGS,
    RESNET_DEPTHS,
    build_resnet,
    build_vgg,
    plain_chain,
    resnet18,
    resnet50,
    simple_cnn,
    simple_mlp,
    tiny_residual,
    vgg11,
    vgg16,
)

#: torchvision's exact trainable-parameter counts at 1000 classes.
TORCHVISION_PARAMS = {
    18: 11_689_512,
    34: 21_797_672,
    50: 25_557_032,
    101: 44_549_160,
    152: 60_192_808,
}


class TestResNetParams:
    @pytest.mark.parametrize("depth", RESNET_DEPTHS)
    def test_param_counts_match_torchvision(self, depth):
        g = build_resnet(depth)
        assert g.trainable_numel == TORCHVISION_PARAMS[depth]

    def test_buffers_are_bn_running_stats(self):
        g = build_resnet(18)
        # Each BN contributes 2C buffers and 2C trainable affine params;
        # buffers therefore equal the BN trainable parameters in count.
        bn_trainable = sum(
            p.numel
            for _, p in g.iter_params()
            if p.trainable and p.name in ("weight", "bias") and len(p.shape) == 1
        )
        # fc bias is also 1-D; subtract it.
        bn_trainable -= 1000
        assert g.buffer_numel == bn_trainable

    def test_unknown_depth_rejected(self):
        with pytest.raises(ShapeError):
            build_resnet(77)

    def test_num_classes_changes_head_only(self):
        a = build_resnet(18, num_classes=1000)
        b = build_resnet(18, num_classes=10)
        assert a.trainable_numel - b.trainable_numel == (512 * 990 + 990)


class TestResNetShapes:
    def test_output_is_logits(self):
        g = resnet18()
        specs = g.infer()
        assert specs["head.fc"].shape == (1000,)

    def test_stem_halves_twice(self):
        specs = resnet18().infer()
        assert specs["stem.bn"].shape == (64, 112, 112)
        assert specs["stem.pool"].shape == (64, 56, 56)

    def test_stage_resolutions(self):
        specs = resnet50().infer()
        assert specs["layer1.2.relu3"].shape == (256, 56, 56)
        assert specs["layer2.3.relu3"].shape == (512, 28, 28)
        assert specs["layer3.5.relu3"].shape == (1024, 14, 14)
        assert specs["layer4.2.relu3"].shape == (2048, 7, 7)

    @pytest.mark.parametrize("image", [224, 320, 500])
    def test_arbitrary_image_sizes(self, image):
        g = build_resnet(18, image_size=image)
        assert g.infer()["head.fc"].shape == (1000,)

    def test_flops_scale_with_depth(self):
        f18 = flop_report(build_resnet(18, image_size=64)).forward
        f50 = flop_report(build_resnet(50, image_size=64)).forward
        assert f50 > f18

    def test_known_gmacs(self):
        """ResNet-18 at 224 is ~1.82 GMACs, ResNet-50 ~4.1 GMACs."""
        f18 = build_resnet(18).total_flops_per_sample() / 2
        f50 = build_resnet(50).total_flops_per_sample() / 2
        assert f18 == pytest.approx(1.82e9, rel=0.03)
        assert f50 == pytest.approx(4.10e9, rel=0.03)

    def test_activation_bytes_monotone_in_depth(self):
        acts = [build_resnet(d, image_size=64).activation_bytes_per_sample() for d in RESNET_DEPTHS]
        assert acts == sorted(acts)

    def test_config_expansion(self):
        assert RESNET_CONFIGS[18].expansion == 1
        assert RESNET_CONFIGS[50].expansion == 4


class TestVGG:
    def test_vgg16_params_match_torchvision(self):
        assert vgg16().trainable_numel == 138_357_544

    def test_vgg11_params_match_torchvision(self):
        assert vgg11().trainable_numel == 132_863_336

    def test_vgg_bn_adds_buffers(self):
        plain = build_vgg(11)
        bn = build_vgg(11, batch_norm=True)
        assert bn.buffer_numel > 0
        assert plain.buffer_numel == 0

    def test_unknown_depth(self):
        with pytest.raises(ShapeError):
            build_vgg(15)


class TestSimpleModels:
    def test_simple_cnn_shapes(self):
        g = simple_cnn(image_size=32, num_classes=10)
        assert g.infer()[g.tail].shape == (10,)

    def test_simple_mlp_depth(self):
        g = simple_mlp(depth=4)
        assert g.infer()[g.tail].shape == (10,)

    def test_tiny_residual_output(self):
        g = tiny_residual()
        assert g.infer()["fc"].shape == (4,)

    def test_plain_chain_homogeneous_params(self):
        g = plain_chain(depth=3, features=8)
        assert g.trainable_numel == 3 * (8 * 8 + 8)
