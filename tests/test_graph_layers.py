"""Symbolic layer shape inference, parameter declarations and FLOPs."""

import pytest

from repro.errors import ShapeError
from repro.graph import (
    Add,
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Concat,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Identity,
    Input,
    Linear,
    MaxPool2d,
    ReLU,
    Softmax,
    TensorSpec,
)

CHW = TensorSpec((16, 8, 8))


class TestConv2d:
    def test_shape(self):
        layer = Conv2d(in_channels=16, out_channels=32, kernel_size=3, padding=1)
        assert layer.infer([CHW]).shape == (32, 8, 8)

    def test_param_count_no_bias(self):
        layer = Conv2d(in_channels=16, out_channels=32, kernel_size=3, bias=False)
        assert layer.trainable_numel == 32 * 16 * 9

    def test_param_count_with_bias(self):
        layer = Conv2d(in_channels=16, out_channels=32, kernel_size=3, bias=True)
        assert layer.trainable_numel == 32 * 16 * 9 + 32

    def test_grouped_params(self):
        layer = Conv2d(in_channels=16, out_channels=32, kernel_size=3, groups=4)
        assert layer.trainable_numel == 32 * 4 * 9

    def test_groups_must_divide(self):
        with pytest.raises(ShapeError):
            Conv2d(in_channels=16, out_channels=30, kernel_size=3, groups=4)

    def test_channel_mismatch_raises(self):
        layer = Conv2d(in_channels=8, out_channels=32, kernel_size=3)
        with pytest.raises(ShapeError):
            layer.infer([CHW])

    def test_flops_are_2x_macs(self):
        layer = Conv2d(in_channels=16, out_channels=32, kernel_size=3, padding=1)
        out = layer.infer([CHW])
        assert layer.flops([CHW], out) == 2 * 8 * 8 * 32 * 16 * 9

    def test_flat_input_raises(self):
        with pytest.raises(ShapeError):
            Conv2d(in_channels=16, out_channels=8, kernel_size=1).infer([TensorSpec((16,))])


class TestBatchNorm2d:
    def test_preserves_shape(self):
        assert BatchNorm2d(num_features=16).infer([CHW]) == CHW

    def test_param_split_trainable_vs_buffers(self):
        layer = BatchNorm2d(num_features=16)
        assert layer.trainable_numel == 32  # gamma + beta
        assert layer.buffer_numel == 32  # running mean + var

    def test_no_affine(self):
        layer = BatchNorm2d(num_features=16, affine=False)
        assert layer.trainable_numel == 0
        assert layer.buffer_numel == 32

    def test_wrong_channels(self):
        with pytest.raises(ShapeError):
            BatchNorm2d(num_features=8).infer([CHW])


class TestPooling:
    def test_maxpool_default_stride(self):
        out = MaxPool2d(kernel_size=2).infer([CHW])
        assert out.shape == (16, 4, 4)

    def test_maxpool_explicit_stride(self):
        out = MaxPool2d(kernel_size=3, stride=2, padding=1).infer([CHW])
        assert out.shape == (16, 4, 4)

    def test_avgpool(self):
        out = AvgPool2d(kernel_size=2).infer([CHW])
        assert out.shape == (16, 4, 4)

    def test_adaptive_to_one(self):
        out = AdaptiveAvgPool2d(output_size=1).infer([CHW])
        assert out.shape == (16, 1, 1)

    def test_adaptive_upscale_rejected(self):
        with pytest.raises(ShapeError):
            AdaptiveAvgPool2d(output_size=16).infer([CHW])

    def test_global_avg_pool_flattens(self):
        assert GlobalAvgPool().infer([CHW]).shape == (16,)


class TestLinearAndFriends:
    def test_linear_shape_and_params(self):
        layer = Linear(in_features=64, out_features=10)
        assert layer.infer([TensorSpec((64,))]).shape == (10,)
        assert layer.trainable_numel == 64 * 10 + 10

    def test_linear_rejects_chw(self):
        with pytest.raises(ShapeError):
            Linear(in_features=64, out_features=10).infer([CHW])

    def test_linear_feature_mismatch(self):
        with pytest.raises(ShapeError):
            Linear(in_features=32, out_features=10).infer([TensorSpec((64,))])

    def test_flatten(self):
        assert Flatten().infer([CHW]).shape == (16 * 8 * 8,)

    def test_softmax_preserves(self):
        assert Softmax().infer([TensorSpec((10,))]).shape == (10,)

    def test_softmax_rejects_chw(self):
        with pytest.raises(ShapeError):
            Softmax().infer([CHW])

    def test_dropout_validates_p(self):
        with pytest.raises(ShapeError):
            Dropout(p=1.0)

    def test_relu_is_inplace_capable(self):
        assert ReLU().inplace_capable
        assert not Conv2d(in_channels=1, out_channels=1, kernel_size=1).inplace_capable


class TestMultiInput:
    def test_add_requires_equal_shapes(self):
        add = Add()
        assert add.infer([CHW, CHW]) == CHW
        with pytest.raises(ShapeError):
            add.infer([CHW, TensorSpec((16, 4, 4))])

    def test_add_arity(self):
        with pytest.raises(ShapeError):
            Add().infer([CHW])

    def test_concat_channels(self):
        out = Concat().infer([CHW, TensorSpec((8, 8, 8))])
        assert out.shape == (24, 8, 8)

    def test_concat_spatial_mismatch(self):
        with pytest.raises(ShapeError):
            Concat().infer([CHW, TensorSpec((8, 4, 4))])

    def test_identity_and_input(self):
        assert Identity().infer([CHW]) == CHW
        assert Input(spec=CHW).infer([]) == CHW
