"""Native megafleet engine: determinism contract, RNG, events, presets."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanningError
from repro.megafleet import (
    BLOCK,
    CRASH,
    FEDERATION,
    REPORT,
    DayEventQueue,
    DeviceCohort,
    MegaFleetConfig,
    model_bytes,
    preset_config,
    run_megafleet,
    shard_tasks,
)
from repro.megafleet.rng import TAG_CRASH, TAG_RATE, device_keys, erlang, geometric, uniforms


def payload_bytes(result) -> bytes:
    """Canonical serialization of the execution-independent aggregates."""
    return json.dumps(result.to_payload(), sort_keys=True).encode()


def small_cfg(**kw):
    base = dict(
        cohorts=(
            DeviceCohort(name="a", count=300, mtbf_days=20.0, snapshot_period_days=2),
            DeviceCohort(name="b", count=200, mtbf_days=40.0, crossings_per_day_mean=90.0),
        ),
        days=25,
        federation_period=5,
        seed=4,
    )
    base.update(kw)
    return MegaFleetConfig(**base)


class TestRng:
    def test_draws_are_pure_functions(self):
        keys = device_keys(1, "c", 64)
        assert np.array_equal(
            uniforms(keys, TAG_CRASH, np.uint64(3)),
            uniforms(keys, TAG_CRASH, np.uint64(3)),
        )

    def test_uniforms_in_unit_interval(self):
        u = uniforms(device_keys(0, "c", 10_000), TAG_RATE, np.uint64(0))
        assert u.min() >= 0.0 and u.max() < 1.0
        assert 0.45 < u.mean() < 0.55

    def test_device_keys_slice_by_start(self):
        """A shard's keys equal the whole cohort's keys at its ordinals."""
        whole = device_keys(9, "c", 100)
        assert np.array_equal(device_keys(9, "c", 40, start=60), whole[60:])

    def test_keys_differ_by_cohort_and_seed(self):
        a = device_keys(0, "a", 50)
        assert not np.array_equal(a, device_keys(0, "b", 50))
        assert not np.array_equal(a, device_keys(1, "a", 50))

    def test_geometric_clamps(self):
        u = np.array([0.0, 0.5, 0.999999])
        assert np.array_equal(geometric(u, 1.0), [1, 1, 1])  # p >= 1: always day 1
        assert np.array_equal(geometric(u, 0.0), [0, 0, 0])  # p <= 0: never (masked)
        g = geometric(u, 0.25)
        assert g.min() >= 1

    def test_geometric_mean_matches_distribution(self):
        u = uniforms(device_keys(0, "g", 200_000), TAG_CRASH, np.uint64(0))
        assert geometric(u, 0.1).mean() == pytest.approx(10.0, rel=0.05)

    def test_erlang_positive_with_expected_mean(self):
        r = erlang(device_keys(0, "e", 200_000), TAG_RATE, 2, 30.0)
        assert r.min() > 0
        assert r.mean() == pytest.approx(60.0, rel=0.05)  # shape * scale

    def test_erlang_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            erlang(device_keys(0, "e", 4), TAG_RATE, 0, 1.0)


class TestEventQueue:
    def test_within_day_order_crash_federation_report(self):
        q = DayEventQueue()
        q.push(3, REPORT)
        q.push(3, CRASH, np.array([1], dtype=np.int64))
        q.push(3, FEDERATION)
        q.push(1, REPORT)
        fired = [q.pop()[:2] for _ in range(len(q))]
        assert fired == [(1, REPORT), (3, CRASH), (3, FEDERATION), (3, REPORT)]

    def test_payloads_merge_and_sort(self):
        q = DayEventQueue()
        q.push(2, CRASH, np.array([5, 3], dtype=np.int64))
        q.push(2, CRASH, np.array([1], dtype=np.int64))
        day, kind, idx = q.pop()
        assert (day, kind) == (2, CRASH)
        assert idx.tolist() == [1, 3, 5]

    def test_push_crashes_drops_beyond_horizon(self):
        q = DayEventQueue()
        q.push_crashes(
            np.array([2, 50, 7]), np.arange(3, dtype=np.int64), horizon=10
        )
        seen = []
        while len(q):
            day, _, idx = q.pop()
            seen.append((day, idx.tolist()))
        assert seen == [(2, [0]), (7, [2])]


class TestDeterminismContract:
    def test_jobs_do_not_change_a_byte(self):
        cfg = small_cfg()
        assert payload_bytes(run_megafleet(cfg, jobs=1)) == payload_bytes(
            run_megafleet(cfg, jobs=2)
        )

    def test_shard_size_does_not_change_a_byte(self):
        cfg = small_cfg()
        ref = payload_bytes(run_megafleet(cfg, shard_devices=BLOCK))
        for span in (2 * BLOCK, 100):  # 100 rounds up to one block
            assert payload_bytes(run_megafleet(cfg, shard_devices=span)) == ref

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), span=st.sampled_from([1, 2, 3]))
    def test_property_shard_count_invariance(self, seed, span):
        """For arbitrary seeds, shard layout never changes the payload."""
        cfg = small_cfg(seed=seed, federation_period=0, days=10)
        assert payload_bytes(
            run_megafleet(cfg, shard_devices=span * BLOCK)
        ) == payload_bytes(run_megafleet(cfg, shard_devices=4 * BLOCK))

    def test_cohort_order_permutation_invariance(self):
        """Reordering cohorts permutes nothing observable: integer
        aggregates are exact; float sums may reassociate (block order
        changes) so they match to numerical tolerance."""
        cfg = small_cfg()
        flipped = MegaFleetConfig(
            cohorts=tuple(reversed(cfg.cohorts)),
            days=cfg.days,
            federation_period=cfg.federation_period,
            seed=cfg.seed,
        )
        a, b = run_megafleet(cfg), run_megafleet(flipped)
        assert a.total_crashes == b.total_crashes
        assert a.total_downtime_days == b.total_downtime_days
        assert a.total_lost_samples == pytest.approx(b.total_lost_samples, rel=1e-12)
        assert a.total_harvest == pytest.approx(b.total_harvest, rel=1e-12)
        by_name = {c.name: c for c in b.cohorts}
        for c in a.cohorts:  # per-cohort stats are exactly preserved
            assert c == by_name[c.name]
        for da, db in zip(a.trajectory, b.trajectory):
            assert da.day == db.day
            assert da.devices_up == db.devices_up
            assert da.min_accuracy == db.min_accuracy  # min is order-free
            assert da.mean_accuracy == pytest.approx(db.mean_accuracy, rel=1e-12)

    def test_report_stride_subsamples_the_same_trajectory(self):
        """Coarser reporting is a subset, not a different simulation."""
        fine = run_megafleet(small_cfg(report_every=1))
        coarse = run_megafleet(small_cfg(report_every=5))
        fine_by_day = {d.day: d for d in fine.trajectory}
        for d in coarse.trajectory:
            assert d == fine_by_day[d.day]


class TestEngineBehavior:
    def test_no_faults_no_damage(self):
        cfg = MegaFleetConfig(
            cohorts=(DeviceCohort(name="calm", count=500, mtbf_days=0.0),),
            days=20,
        )
        r = run_megafleet(cfg)
        assert r.total_crashes == 0
        assert r.total_lost_samples == 0.0
        assert r.trajectory[-1].devices_up == 500

    def test_isolated_pays_no_radio(self):
        r = run_megafleet(small_cfg(federation_period=0))
        assert r.radio_bytes_total == 0

    def test_federation_radio_is_cohort_weighted(self):
        cfg = small_cfg(federation_period=5, days=25)
        r = run_megafleet(cfg)
        per_round = sum(2 * model_bytes(c.model_depth) * c.count for c in cfg.cohorts)
        assert r.radio_bytes_total == 5 * per_round

    def test_federation_lifts_the_minimum(self):
        iso = run_megafleet(small_cfg(federation_period=0))
        fed = run_megafleet(small_cfg(federation_period=5))
        assert fed.min_final_accuracy > iso.min_final_accuracy

    def test_faults_cost_accuracy(self):
        calm = run_megafleet(
            small_cfg(
                cohorts=(DeviceCohort(name="a", count=400, mtbf_days=0.0),),
                federation_period=0,
            )
        )
        faulty = run_megafleet(
            small_cfg(
                cohorts=(
                    DeviceCohort(
                        name="a", count=400, mtbf_days=5.0, outage_days_mean=3.0
                    ),
                ),
                federation_period=0,
            )
        )
        assert faulty.total_crashes > 0
        assert faulty.mean_final_accuracy < calm.mean_final_accuracy

    def test_snapshot_cadence_bounds_loss(self):
        """Daily snapshots lose at most ~a day of harvest per crash."""
        daily = run_megafleet(
            small_cfg(
                cohorts=(
                    DeviceCohort(name="a", count=400, mtbf_days=10.0,
                                 snapshot_period_days=1),
                ),
                federation_period=0,
            )
        )
        weekly = run_megafleet(
            small_cfg(
                cohorts=(
                    DeviceCohort(name="a", count=400, mtbf_days=10.0,
                                 snapshot_period_days=7),
                ),
                federation_period=0,
            )
        )
        assert daily.total_lost_samples < weekly.total_lost_samples

    def test_shard_tasks_cut_only_at_block_boundaries(self):
        cfg = small_cfg(
            cohorts=(
                DeviceCohort(name="a", count=3 * BLOCK + 17),
                DeviceCohort(name="b", count=5),
            )
        )
        for _, start, stop in shard_tasks(cfg, shard_devices=BLOCK + 1):
            assert start % BLOCK == 0
        stops = [t[2] for t in shard_tasks(cfg, shard_devices=BLOCK)]
        assert stops[-1] == 5  # cohort ends are always legal cut points

    def test_payload_is_strict_json(self):
        doc = run_megafleet(small_cfg()).to_payload()
        assert json.loads(json.dumps(doc, allow_nan=False)) == doc
        assert "n_shards" not in doc  # execution metadata stays out


class TestPresetsAndValidation:
    def test_mixed_preset_partitions_devices(self):
        cfg = preset_config("mixed", 10_000)
        assert cfg.n_devices == 10_000
        assert len(cfg.cohorts) == 4
        assert len({c.storage for c in cfg.cohorts}) == 2  # sd-card and emmc

    def test_uniform_preset_single_cohort(self):
        cfg = preset_config("uniform", 1234)
        assert [c.count for c in cfg.cohorts] == [1234]

    def test_unknown_preset_rejected(self):
        with pytest.raises(PlanningError):
            preset_config("exotic", 100)

    @pytest.mark.parametrize(
        "kw",
        [
            dict(count=0),
            dict(model_depth=64),
            dict(storage="tape"),
            dict(traffic_shape=0),
            dict(duty_cycle=0.0),
            dict(duty_cycle=1.5),
            dict(mtbf_days=-1.0),
            dict(snapshot_period_days=0),
            dict(outage_days_mean=-0.1),
        ],
    )
    def test_cohort_validation(self, kw):
        base = dict(name="c", count=10)
        base.update(kw)
        with pytest.raises(PlanningError):
            DeviceCohort(**base)

    def test_config_rejects_duplicate_cohort_names(self):
        with pytest.raises(PlanningError):
            MegaFleetConfig(
                cohorts=(
                    DeviceCohort(name="x", count=1),
                    DeviceCohort(name="x", count=2),
                )
            )

    def test_config_needs_cohorts_and_days(self):
        with pytest.raises(PlanningError):
            MegaFleetConfig(cohorts=())
        with pytest.raises(PlanningError):
            MegaFleetConfig(cohorts=(DeviceCohort(name="x", count=1),), days=0)

    def test_model_bytes_matches_zoo(self):
        from repro.zoo import build_resnet

        assert model_bytes(34) == build_resnet(34, image_size=64).trainable_bytes
        with pytest.raises(PlanningError):
            model_bytes(19)

    def test_report_days_always_include_final(self):
        cfg = small_cfg(report_every=0)
        assert cfg.report_days() == (cfg.days,)
        cfg = small_cfg(report_every=7, days=25)
        assert cfg.report_days() == (7, 14, 21, 25)
