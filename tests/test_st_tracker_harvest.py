"""Tracker association quality and label harvesting."""

import numpy as np
import pytest

from repro.studentteacher import (
    TeacherModel,
    ViewpointWorld,
    harvest_labels,
    track_episode,
)


@pytest.fixture
def world():
    return ViewpointWorld(num_classes=4, feature_dim=8, rng=np.random.default_rng(3))


@pytest.fixture
def episode(world):
    return world.generate_episode(n_subjects=20, frames_per_crossing=12, clutter_rate=0.2)


@pytest.fixture
def teacher(world):
    x, y = world.sample_frontal(150)
    return TeacherModel.fit(x, y)


def association_purity(episode, assignments):
    """For each tracker track, the fraction of its detections belonging to
    its majority ground-truth subject."""
    from collections import Counter, defaultdict

    by_track = defaultdict(list)
    for a in assignments:
        det = episode.frames[a.t].detections[a.det_index]
        by_track[a.track_id].append(det.truth_track)
    pure, total = 0, 0
    for members in by_track.values():
        if len(members) < 3:
            continue
        c = Counter(members)
        pure += c.most_common(1)[0][1]
        total += len(members)
    return pure / max(1, total)


class TestTracker:
    def test_every_detection_assigned(self, episode):
        assignments = track_episode(episode)
        n_dets = episode.num_detections
        assert len(assignments) == n_dets

    def test_association_purity_high(self, episode):
        assignments = track_episode(episode)
        assert association_purity(episode, assignments) > 0.9

    def test_subject_tracks_recovered_whole(self, world):
        """With no clutter and spaced subjects, each subject maps to one
        tracker id for its entire crossing."""
        ep = world.generate_episode(
            n_subjects=5, frames_per_crossing=10, clutter_rate=0.0, spacing=15
        )
        assignments = track_episode(ep)
        from collections import defaultdict

        truth_to_tracker = defaultdict(set)
        for a in assignments:
            det = ep.frames[a.t].detections[a.det_index]
            if det.truth_track >= 0:
                truth_to_tracker[det.truth_track].add(a.track_id)
        assert all(len(v) == 1 for v in truth_to_tracker.values())

    def test_gate_prevents_teleport_association(self, world):
        ep = world.generate_episode(n_subjects=2, frames_per_crossing=8, clutter_rate=0.0, spacing=30)
        assignments = track_episode(ep, gate=1e-6)
        # With a tiny gate every detection opens its own track.
        ids = {a.track_id for a in assignments}
        assert len(ids) == len(assignments)


class TestHarvest:
    def test_track_end_labelling_purity(self, episode, teacher):
        assignments = track_episode(episode)
        h = harvest_labels(episode, assignments, teacher, label_source="track_end")
        assert len(h) > 50
        assert h.label_purity > 0.75

    def test_track_end_beats_max_confidence(self, episode, teacher):
        """The paper's last-frame rule yields purer labels than trusting
        raw confidence (which is fooled by aspect confusion)."""
        assignments = track_episode(episode)
        end = harvest_labels(episode, assignments, teacher, label_source="track_end")
        conf = harvest_labels(episode, assignments, teacher, label_source="max_confidence")
        assert end.label_purity >= conf.label_purity

    def test_threshold_filters_tracks(self, episode, teacher):
        assignments = track_episode(episode)
        strict = harvest_labels(episode, assignments, teacher, confidence_threshold=0.999)
        lax = harvest_labels(episode, assignments, teacher, confidence_threshold=0.5)
        assert strict.tracks_labelled <= lax.tracks_labelled

    def test_short_tracks_dropped(self, episode, teacher):
        assignments = track_episode(episode)
        h = harvest_labels(episode, assignments, teacher, min_track_length=10**6)
        assert len(h) == 0
        assert h.label_purity == 1.0  # vacuous

    def test_each_label_propagates_many_frames(self, episode, teacher):
        """'Every such instance contributes tens of images' (Section III)."""
        assignments = track_episode(episode)
        h = harvest_labels(episode, assignments, teacher)
        if h.tracks_labelled:
            assert len(h) / h.tracks_labelled >= 8

    def test_arrays_consistent(self, episode, teacher):
        assignments = track_episode(episode)
        h = harvest_labels(episode, assignments, teacher)
        assert h.x.shape[0] == len(h.y) == len(h.angles) == len(h)

    def test_validation(self, episode, teacher):
        assignments = track_episode(episode)
        with pytest.raises(ValueError):
            harvest_labels(episode, assignments, teacher, confidence_threshold=0.0)
        with pytest.raises(ValueError):
            harvest_labels(episode, assignments, teacher, label_source="oracle")
