"""Tables I-III regeneration: ours vs paper, shading reproduction."""

import pytest

from repro.experiments import compare_to_paper, memory_models, table1, table2, table3
from repro.memory import PAPER_TABLE1_MB
from repro.units import GB


class TestTable1:
    def test_paper_source_reproduces_published_values(self):
        t = table1("paper")
        for k, row in PAPER_TABLE1_MB.items():
            for depth, mb in row.items():
                assert t.value(k, depth) == pytest.approx(mb, abs=0.1)

    def test_ours_within_factor_of_paper(self):
        """First-principles values track the paper within [0.5x, 1.1x] —
        the paper counts more activation copies; ordering is identical."""
        t = table1("ours")
        for k, row in PAPER_TABLE1_MB.items():
            for depth, mb in row.items():
                ratio = t.value(k, depth) / mb
                assert 0.5 < ratio < 1.1, (k, depth, ratio)

    def test_ordering_matches_paper(self):
        """Within every row, model ordering by memory matches the paper."""
        t = table1("ours")
        for k in t.rows:
            ours = [t.value(k, d) for d in t.depths]
            paper = [PAPER_TABLE1_MB[k][d] for d in t.depths]
            assert ours == sorted(ours)
            assert paper == sorted(paper)

    def test_shading_batch1_none(self):
        t = table1("paper")
        assert not any(t.exceeds_budget(1, d) for d in t.depths)

    def test_shading_batch50_all(self):
        t = table1("paper")
        assert all(t.exceeds_budget(50, d) for d in t.depths)

    def test_render_marks_shaded(self):
        text = table1("paper").as_table().render()
        assert "*" in text


class TestTable2And3:
    def test_table2_monotone_in_image(self):
        t = table2("ours")
        for d in t.depths:
            vals = [t.value(s, d) for s in t.rows]
            assert vals == sorted(vals)

    def test_table3_unit_is_gb(self):
        t3 = table3("paper")
        assert t3.unit == "GB"
        # Table III at 224 equals Table I batch 8 (paper consistency).
        assert t3.values_bytes[(224, 18)] == pytest.approx(
            615.05 * 1024 * 1024, rel=0.001
        )

    def test_table3_paper_headline(self):
        """Batch 8: no model deeper than 18/34 fits even at 224 (paper:
        'one cannot use a network with more than 50 layers')."""
        t3 = table3("paper")
        assert not t3.exceeds_budget(224, 18)
        assert not t3.exceeds_budget(224, 34)
        for d in (50, 101, 152):
            assert t3.exceeds_budget(224, d)

    def test_table3_650_nothing_fits(self):
        t3 = table3("paper")
        assert all(t3.exceeds_budget(650, d) for d in t3.depths)


class TestInfra:
    def test_memory_models_cached(self):
        a = memory_models()
        b = memory_models()
        assert a is b or a == b

    def test_compare_contains_ratio(self):
        text = compare_to_paper("table1", "ours").render()
        assert "x)" in text

    def test_csv_roundtrip(self):
        csv = table1("paper").as_table().to_csv()
        assert csv.count("\n") == 7  # header + 6 batch rows
