"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.ShapeError,
        errors.GraphError,
        errors.ScheduleError,
        errors.ExecutionError,
        errors.MemoryBudgetError,
        errors.CalibrationError,
        errors.PlanningError,
    ],
)
def test_subclasses_of_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise exc("boom")


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)
