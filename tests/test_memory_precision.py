"""Mixed/reduced-precision memory transforms."""

import pytest

from repro.memory import account, cast_account, mixed_precision_account
from repro.zoo import build_resnet


@pytest.fixture(scope="module")
def fp32():
    return account(build_resnet(18, image_size=64))


class TestCast:
    def test_fp16_halves_everything(self, fp32):
        half = cast_account(fp32)
        assert half.fixed_bytes == pytest.approx(fp32.fixed_bytes / 2, abs=2)
        assert half.act_bytes_per_sample == pytest.approx(
            fp32.act_bytes_per_sample / 2, abs=2
        )
        assert half.weight_bytes == pytest.approx(fp32.weight_bytes / 2, abs=2)

    def test_fp64_doubles(self, fp32):
        double = cast_account(fp32, weight_bytes_per_elem=8, act_bytes_per_elem=8)
        assert double.fixed_bytes == pytest.approx(2 * fp32.fixed_bytes, abs=2)

    def test_asymmetric_cast(self, fp32):
        mixed = cast_account(fp32, weight_bytes_per_elem=4, act_bytes_per_elem=2)
        assert mixed.fixed_bytes == fp32.fixed_bytes
        assert mixed.act_bytes_per_sample < fp32.act_bytes_per_sample

    def test_policy_name_tagged(self, fp32):
        assert "cast" in cast_account(fp32).policy

    def test_validation(self, fp32):
        with pytest.raises(ValueError):
            cast_account(fp32, weight_bytes_per_elem=0)


class TestMixedPrecision:
    def test_activations_halve(self, fp32):
        amp = mixed_precision_account(fp32)
        assert amp.act_bytes_per_sample == fp32.act_bytes_per_sample // 2

    def test_fixed_shrinks_only_modestly(self, fp32):
        """Master weights + optimizer state stay fp32: fixed cost drops
        by exactly half a weight copy (~12% under the 4-copy policy)."""
        amp = mixed_precision_account(fp32)
        expected = fp32.fixed_bytes - fp32.weight_bytes + fp32.weight_bytes // 2
        assert amp.fixed_bytes == expected
        assert 0.85 < amp.fixed_bytes / fp32.fixed_bytes < 0.92

    def test_total_ordering(self, fp32):
        """pure fp16 < AMP < fp32 at any batch size."""
        amp = mixed_precision_account(fp32)
        half = cast_account(fp32)
        for k in (1, 8, 32):
            assert half.total_bytes(k) < amp.total_bytes(k) < fp32.total_bytes(k)

    def test_checkpointing_still_dominates_batch_scaling(self):
        """AMP halves the slope; checkpointing removes (l-c)/l of it.
        Where activations dominate (full 224 px images, batch 8),
        checkpointed fp32 already undercuts AMP store-all."""
        from repro.checkpointing import memory_for_slots

        full = account(build_resnet(18, image_size=224))
        amp = mixed_precision_account(full)
        l = 18
        slot = 8 * full.act_bytes_per_sample / l
        ckpt_fp32 = memory_for_slots(4, full.fixed_bytes, slot)
        assert ckpt_fp32 < amp.total_bytes(8)

    def test_validation(self, fp32):
        with pytest.raises(ValueError):
            mixed_precision_account(fp32, weight_copies=0)
