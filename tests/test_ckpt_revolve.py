"""Revolve: closed form vs DP vs executed schedules (the paper's core)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpointing import (
    ChainSpec,
    beta,
    extra_forwards,
    min_slots_for_extra,
    opt_forwards,
    opt_forwards_dp,
    repetition_number,
    revolve_schedule,
    simulate,
    store_all_schedule,
)
from repro.errors import PlanningError, ScheduleError


class TestBeta:
    def test_binomials(self):
        assert beta(3, 2) == 10  # C(5,3)
        assert beta(1, r=5) == 6
        assert beta(5, 0) == 1

    def test_degenerate(self):
        assert beta(-1, 2) == 0
        assert beta(2, -1) == 0

    def test_repetition_number_boundaries(self):
        # l <= c+1 -> r = 1; l = 1 -> r = 0.
        assert repetition_number(1, 3) == 0
        assert repetition_number(4, 3) == 1
        assert repetition_number(5, 3) == 2

    def test_repetition_validation(self):
        with pytest.raises(ScheduleError):
            repetition_number(0, 1)
        with pytest.raises(ScheduleError):
            repetition_number(5, 0)


class TestOptForwards:
    def test_known_small_values(self):
        assert opt_forwards(1, 1) == 0
        assert opt_forwards(2, 1) == 1
        assert opt_forwards(4, 2) == 4
        assert opt_forwards(10, 1) == 45  # l(l-1)/2

    def test_plenty_of_slots_is_single_sweep(self):
        for l in (2, 5, 20):
            assert opt_forwards(l, l - 1) == l - 1

    def test_monotone_decreasing_in_slots(self):
        vals = [opt_forwards(30, c) for c in range(1, 30)]
        assert vals == sorted(vals, reverse=True)

    def test_monotone_increasing_in_length(self):
        vals = [opt_forwards(l, 3) for l in range(1, 40)]
        assert vals == sorted(vals)

    @given(l=st.integers(1, 60), c=st.integers(1, 20))
    @settings(max_examples=200, deadline=None)
    def test_closed_form_equals_dp(self, l, c):
        """Griewank-Walther's binomial formula matches the DP recurrence."""
        c_eff = min(c, max(1, l - 1))
        assert opt_forwards(l, c_eff) == opt_forwards_dp(l, c)

    def test_paper_scale_value(self):
        # LinearResNet-152 with 5 slots: DP agrees with closed form.
        assert opt_forwards(152, 5) == opt_forwards_dp(152, 5)

    def test_large_l_closed_form_fast(self):
        # The closed form handles chain lengths far beyond DP reach.
        assert opt_forwards(10_000, 10) > 0


class TestExtraForwards:
    def test_zero_at_store_all(self):
        assert extra_forwards(10, 9) == 0
        assert extra_forwards(10, 50) == 0
        assert extra_forwards(1, 1) == 0

    def test_single_slot_quadratic(self):
        l = 10
        assert extra_forwards(l, 1) == (l - 1) * (l - 2) // 2

    def test_never_negative(self):
        for l in range(1, 60):
            for c in range(1, l + 2):
                assert extra_forwards(l, c) >= 0


class TestMinSlots:
    def test_budget_zero_requires_store_all(self):
        assert min_slots_for_extra(10, 0) == 9

    def test_huge_budget_one_slot(self):
        assert min_slots_for_extra(10, 10_000) == 1

    def test_boundary_exactness(self):
        l = 50
        for budget in (0, 10, 49, 100, 500):
            c = min_slots_for_extra(l, budget)
            assert extra_forwards(l, c) <= budget
            if c > 1:
                assert extra_forwards(l, c - 1) > budget

    def test_negative_budget_rejected(self):
        with pytest.raises(PlanningError):
            min_slots_for_extra(10, -1)

    @given(l=st.integers(2, 150), budget=st.integers(0, 2000))
    @settings(max_examples=150, deadline=None)
    def test_minimality_property(self, l, budget):
        c = min_slots_for_extra(l, budget)
        assert extra_forwards(l, c) <= budget
        if c > 1:
            assert extra_forwards(l, c - 1) > budget


class TestRevolveSchedule:
    @given(l=st.integers(1, 45), c=st.integers(1, 12))
    @settings(max_examples=120, deadline=None)
    def test_schedule_is_optimal_and_valid(self, l, c):
        """Executed forward count == P(l, c); slots within budget; all
        adjoints in order (simulate() raises otherwise)."""
        sch = revolve_schedule(l, c)
        stats = simulate(sch)
        assert stats.forward_steps == opt_forwards(l, sch.slots)
        assert stats.peak_slots <= sch.slots
        assert stats.replay_steps == l

    def test_slots_clamped_to_useful(self):
        sch = revolve_schedule(5, 100)
        assert sch.slots == 4

    def test_every_step_executed(self):
        stats = simulate(revolve_schedule(20, 3))
        assert all(e >= 1 for e in stats.executions)

    def test_single_slot_executions_triangle(self):
        l = 6
        stats = simulate(revolve_schedule(l, 1))
        # With one slot, step i is re-advanced once per later adjoint.
        assert stats.forward_steps == l * (l - 1) // 2

    def test_validation(self):
        with pytest.raises(ScheduleError):
            revolve_schedule(0, 1)
        with pytest.raises(ScheduleError):
            revolve_schedule(5, 0)

    def test_deep_chain_no_recursion_blowup(self):
        """Left-tail iteration keeps recursion bounded for big l."""
        sch = revolve_schedule(400, 2)
        stats = simulate(sch)
        assert stats.forward_steps == opt_forwards(400, 2)


class TestStoreAllSchedule:
    def test_mandatory_sweep_only(self):
        stats = simulate(store_all_schedule(12))
        assert stats.forward_steps == 11
        assert stats.extra_forward_steps() == 0

    def test_uses_l_slots(self):
        sch = store_all_schedule(7)
        stats = simulate(sch)
        assert stats.peak_slots == 7

    def test_single_step(self):
        stats = simulate(store_all_schedule(1))
        assert stats.forward_steps == 0
        assert stats.replay_steps == 1

    def test_recompute_factor_is_one(self):
        spec = ChainSpec.homogeneous(9)
        stats = simulate(store_all_schedule(9), spec)
        assert stats.recompute_factor(spec) == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ScheduleError):
            store_all_schedule(0)
