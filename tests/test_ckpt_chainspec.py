"""ChainSpec construction and invariants."""

import pytest

from repro.checkpointing import ChainSpec
from repro.errors import ScheduleError
from repro.graph import LinearChain, linearize
from repro.zoo import tiny_residual


class TestHomogeneous:
    def test_lengths(self):
        spec = ChainSpec.homogeneous(5)
        assert spec.length == 5
        assert len(spec.act_bytes) == 6
        assert spec.is_homogeneous

    def test_baseline_time(self):
        spec = ChainSpec.homogeneous(5, fwd_cost=2.0, bwd_cost=3.0)
        assert spec.baseline_time == 5 * (2.0 + 3.0)

    def test_store_all_bytes_excludes_input(self):
        spec = ChainSpec.homogeneous(4, act_bytes=10)
        assert spec.store_all_bytes == 40

    def test_advance_cost(self):
        spec = ChainSpec.homogeneous(6)
        assert spec.advance_cost(1, 4) == 3.0

    def test_advance_cost_validation(self):
        spec = ChainSpec.homogeneous(4)
        with pytest.raises(ScheduleError):
            spec.advance_cost(3, 3)
        with pytest.raises(ScheduleError):
            spec.advance_cost(0, 9)


class TestValidation:
    def test_empty_chain_rejected(self):
        with pytest.raises(ScheduleError):
            ChainSpec(name="x", act_bytes=(1,), fwd_cost=(), bwd_cost=())

    def test_act_length_mismatch(self):
        with pytest.raises(ScheduleError):
            ChainSpec(name="x", act_bytes=(1, 1), fwd_cost=(1.0, 1.0), bwd_cost=(1.0, 1.0))

    def test_negative_cost_rejected(self):
        with pytest.raises(ScheduleError):
            ChainSpec(name="x", act_bytes=(1, 1), fwd_cost=(-1.0,), bwd_cost=(1.0,))


class TestConstructors:
    def test_from_linear_chain(self):
        chain = LinearChain(name="lin", length=4, act_bytes=7, weight_bytes=0, step_flops=3, input_bytes=2)
        spec = ChainSpec.from_linear_chain(chain)
        assert spec.length == 4
        assert spec.act_bytes == (2, 7, 7, 7, 7)
        assert spec.fwd_cost == (3.0,) * 4
        assert spec.bwd_cost == (3.0,) * 4  # bwd_ratio 1 (paper convention)

    def test_from_linear_chain_bwd_ratio(self):
        chain = LinearChain(name="lin", length=2, act_bytes=1, weight_bytes=0, step_flops=2)
        spec = ChainSpec.from_linear_chain(chain, bwd_ratio=2.0)
        assert spec.bwd_cost == (4.0, 4.0)

    def test_from_segment_chain_real_resnet(self):
        seg = linearize(tiny_residual())
        spec = ChainSpec.from_segment_chain(seg)
        assert spec.length == seg.length
        assert not spec.is_homogeneous
        assert spec.act_bytes[0] == seg.input_bytes
