"""Golden equivalence: the vectorized legacy engine is bit-exact.

``simulate_fleet_vectorized`` must reproduce the legacy
``simulate_fleet`` *exactly* — same seeded RNG stream, same per-device
crash/lost/downtime accounting, same day-by-day trajectory — across
every feature combination (faults on/off, federation on/off, snapshot
cadences, sub-day outage means).  Dataclass equality is the strictest
available check: every float in every ``FleetDay`` and every per-node
tuple must match to the last bit.
"""

import pytest

from repro.edge import FleetConfig, simulate_fleet
from repro.megafleet import simulate_fleet_vectorized

CONFIGS = {
    "defaults": dict(),
    "federated": dict(federation_period=5),
    "faults": dict(crash_rate_per_day=0.05, n_nodes=50, days=40, seed=7),
    "faults_federated": dict(
        crash_rate_per_day=0.05, federation_period=5, snapshot_period_days=3,
        outage_days_mean=2.5, n_nodes=100, days=60, seed=7,
    ),
    "instant_rejoin": dict(crash_rate_per_day=0.2, outage_days_mean=0.0, seed=3),
    "subday_outage": dict(
        crash_rate_per_day=0.1, outage_days_mean=0.4, n_nodes=37, days=45, seed=11
    ),
    "single_node": dict(n_nodes=1, crash_rate_per_day=0.1, days=25, seed=5),
    "high_crash": dict(crash_rate_per_day=0.5, n_nodes=20, days=30, seed=13),
}


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_vectorized_is_bit_exact(name):
    cfg = FleetConfig(**CONFIGS[name])
    legacy = simulate_fleet(cfg)
    fast = simulate_fleet_vectorized(cfg)
    assert legacy == fast  # dataclass equality: every field, every bit


def test_per_node_accounting_matches_device_for_device():
    """The damage report, not just the aggregates, is identical."""
    cfg = FleetConfig(
        n_nodes=100, days=60, crash_rate_per_day=0.08,
        snapshot_period_days=4, outage_days_mean=2.0,
        federation_period=10, seed=42,
    )
    legacy = simulate_fleet(cfg)
    fast = simulate_fleet_vectorized(cfg)
    assert fast.crashes == legacy.crashes
    assert fast.lost_samples == legacy.lost_samples
    assert fast.downtime_days == legacy.downtime_days
    assert fast.final_accuracies == legacy.final_accuracies
    for a, b in zip(legacy.days, fast.days):
        assert a == b


def test_both_engines_share_one_quantization():
    """Satellite pin: day-by-day and final accuracy floor identically.

    The historical bug class was ``accuracy(int(e))`` being applied in
    two separately-written places; both engines now route through
    ``quantize_effective``, so the final trajectory point equals the
    final accuracies summary in both.
    """
    cfg = FleetConfig(n_nodes=16, days=30, federation_period=3, seed=9)
    for res in (simulate_fleet(cfg), simulate_fleet_vectorized(cfg)):
        import numpy as np

        assert res.days[-1].mean_accuracy == pytest.approx(
            float(np.mean(res.final_accuracies)), abs=0.0
        )
        assert res.days[-1].min_accuracy == float(np.min(res.final_accuracies))
